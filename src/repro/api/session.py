"""The session layer: configure once, then capture / ingest / diff /
analyze through one object.

:class:`Session` replaces the monolithic ``RPrism`` facade with a
composable driver: configuration is applied fluently
(``Session().with_config(window=8).with_filter(include_modules=...)``),
the differencing backend is resolved through the engine registry
(:mod:`repro.api.engines`), and traces can be persisted to / resolved
from a :class:`repro.api.store.TraceStore` so capture and analysis may
happen in different processes — the paper's offline workflow.

The full Sec. 4 recipe is one call::

    from repro.api import Session

    result = (Session()
              .with_filter(include_modules=("myapp",))
              .run_scenario(old_version, new_version,
                            regressing_input=bad, correct_input=ok))
    print(result.render())

How a session *executes* is pluggable (:mod:`repro.exec`): with the
default ``serial``/``threads`` executors capture is serialised
process-wide — the ``sys.settrace`` weaver admits a single active
:class:`~repro.capture.tracer.Tracer`, so concurrent sessions (e.g. the
parallel pipeline) interleave their capture phases under
:data:`CAPTURE_LOCK` while overlapping the diff/analysis work.  With
``executor="processes"`` captures dispatch to worker processes that
each own their own weaver — N captures proceed truly concurrently and
the lock never enters the picture — and views-based diffs run their
per-thread-pair execution phase through the same pool.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.static.validate import StaticValidation

from repro.api.engines import (DiffEngine, accepts_executor,
                               accepts_key_table, get_engine)
from repro.api.store import TraceStore
from repro.cache import DiffCache, cached_engine_diff
from repro.capture.filters import TraceFilter
from repro.capture.tracer import CaptureResult
from repro.core.diffs import DiffResult
from repro.core.keytable import KeyTable
from repro.core.lcs import MemoryBudget, OpCounter
from repro.core.regression import (MODE_INTERSECT, RegressionReport,
                                   analyze_regression)
from repro.core.traces import Trace
from repro.core.view_diff import ViewDiffConfig
from repro.core.web import ViewWeb
from repro.exec.capture import (CAPTURE_LOCK, CaptureOutcome, CaptureTask,
                                run_capture_tasks)
from repro.exec.executors import Executor, resolve_executor

__all__ = ["CAPTURE_LOCK", "SCENARIO_ROLES", "Session", "SessionResult"]

#: The four trace roles of the Sec. 4 recipe, in capture order.
SCENARIO_ROLES = ("old/regressing", "new/regressing",
                  "old/correct", "new/correct")


@dataclass(slots=True)
class SessionResult:
    """Structured outcome of one regression scenario.

    The suspected set A always exists; expected (B) and regression (C)
    diffs are present only when a correct input was supplied (otherwise
    the run models the unattended-build configuration of Sec. 5.1).
    """

    suspected: DiffResult
    expected: DiffResult | None
    regression: DiffResult | None
    report: RegressionReport
    traces: dict[str, Trace] = field(default_factory=dict)
    seconds: float = 0.0
    engine: str = "views"
    scenario: str = ""
    store_keys: tuple[str, ...] = ()
    #: Distinct workers the captures ran on (``pid:N`` under a process
    #: executor, ``thread:NAME`` in-process), in first-use order.
    workers: tuple[str, ...] = ()
    #: Static change-impact prediction cross-validated against the
    #: dynamic ImpactReport (:mod:`repro.static`), when the scenario
    #: was run with ``static_impact=...``.
    static_impact: "StaticValidation | None" = None

    def diffs(self) -> list[DiffResult]:
        """The diffs actually computed (A, and B/C when present)."""
        return [d for d in (self.suspected, self.expected, self.regression)
                if d is not None]

    def compares(self) -> int:
        """Total entry-compare operations across the scenario's diffs."""
        return sum(d.counter.total for d in self.diffs()
                   if d.counter is not None)

    def render(self, max_sequences: int = 10) -> str:
        lines = [self.report.render(limit=max_sequences)]
        lines.append(
            f"suspected diff: {self.suspected.num_diffs()} differences in "
            f"{len(self.suspected.sequences)} sequences "
            f"({self.suspected.compares()} compares, "
            f"{self.suspected.seconds:.3f}s)")
        if self.expected is not None:
            lines.append(
                f"expected diff:  {self.expected.num_diffs()} differences "
                f"in {len(self.expected.sequences)} sequences")
        if self.regression is not None:
            lines.append(
                f"regression diff: {self.regression.num_diffs()} "
                f"differences in {len(self.regression.sequences)} sequences")
        if self.static_impact is not None:
            lines.append(f"static impact: {self.static_impact.render()}")
        return "\n".join(lines)


class Session:
    """One configured analysis context (the public API entry object)."""

    def __init__(self, *, config: ViewDiffConfig | None = None,
                 filter: TraceFilter | None = None,
                 store: TraceStore | str | Path | None = None,
                 engine: str | DiffEngine = "views",
                 mode: str = MODE_INTERSECT,
                 record_fields: bool = True,
                 key_table: KeyTable | None = None,
                 executor: "Executor | str | None" = None,
                 cache: "DiffCache | str | Path | bool | None" = None):
        self.config = config if config is not None else ViewDiffConfig()
        self.filter = filter
        self.store = self._as_store(store)
        #: Content-addressed diff memoisation (:mod:`repro.cache`).
        #: ``None`` disables caching; ``True`` builds a cache whose
        #: disk tier lives beside the session store (memory-only when
        #: there is no store); a path opens/creates a disk tier there;
        #: an instance is shared as-is (the pipeline hands one handle
        #: to every job).
        self.cache = self._as_cache(cache)
        self.engine = get_engine(engine)
        self.mode = mode
        self.record_fields = record_fields
        #: The session's ingest-time ``=e`` symbol table: every capture
        #: interns into it, so any two traces captured by this session
        #: (or its derived siblings — the pipeline's per-job sessions)
        #: already share one id space when they meet in :meth:`diff`.
        self.key_table = key_table if key_table is not None else KeyTable()
        #: How this session's captures and parallelisable diffs run
        #: (:mod:`repro.exec`): ``serial`` by default; ``"processes"``
        #: isolates each capture in a worker process with its own
        #: settrace weaver.  A pool built here from a name spec is
        #: *owned* — :meth:`close` (or the context manager) releases
        #: it; instances stay with their creator.  ``"processes"``
        #: specs resolve to the process-wide *warm* pool, whose
        #: release is soft — repeat sessions and back-to-back diffs
        #: reuse the same live workers.
        self.executor, self._owns_executor = resolve_executor(executor)

    @staticmethod
    def _as_store(store) -> TraceStore | None:
        if store is None or isinstance(store, TraceStore):
            return store
        return TraceStore(store)

    def _as_cache(self, cache) -> DiffCache | None:
        if cache is None or cache is False:
            return None
        if isinstance(cache, DiffCache):
            return cache
        if cache is True:
            if self.store is not None:
                # A sharded store gets a sharded cache directory too —
                # the same millions-of-entries directory pressure.
                return DiffCache(self.store.root / "diffcache",
                                 sharded=self.store.sharded or None)
            return DiffCache()
        return DiffCache(cache)

    # -- fluent configuration ----------------------------------------------

    def with_config(self, config: ViewDiffConfig | None = None,
                    **knobs) -> "Session":
        """Set the view-diff configuration, or adjust individual knobs
        of the current one (``with_config(window=8, relaxed=False)``)."""
        if config is not None and knobs:
            raise ValueError("pass a config object or knobs, not both")
        if config is not None:
            self.config = config
        elif knobs:
            self.config = dataclasses.replace(self.config, **knobs)
        return self

    def with_filter(self, filter: TraceFilter | None = None,
                    **pointcuts) -> "Session":
        """Set the pointcut filter (or build one from keyword lists)."""
        if filter is not None and pointcuts:
            raise ValueError("pass a filter object or pointcuts, not both")
        self.filter = filter if filter is not None else \
            TraceFilter(**pointcuts)
        return self

    def with_store(self, store: TraceStore | str | Path) -> "Session":
        """Attach a trace store (a path creates/opens a directory)."""
        self.store = self._as_store(store)
        return self

    def with_engine(self, engine: str | DiffEngine) -> "Session":
        """Select the differencing backend by registry name."""
        self.engine = get_engine(engine)
        return self

    def with_cache(self, cache: "DiffCache | str | Path | bool" = True
                   ) -> "Session":
        """Attach a diff cache (``True``: disk tier beside the session
        store, or memory-only without one; a path names the disk tier;
        ``False`` detaches)."""
        self.cache = self._as_cache(cache)
        return self

    def with_mode(self, mode: str) -> "Session":
        """Select the Sec. 4 set-algebra mode (intersect / subtract)."""
        self.mode = mode
        return self

    def with_executor(self, executor: "Executor | str",
                      max_workers: int | None = None) -> "Session":
        """Select the execution backend (``serial`` / ``threads`` /
        ``processes``, optionally ``"processes:4"``-style, or an
        executor instance to share a pool)."""
        # Resolve first: a bad spec must not leave the session with a
        # closed (unusable) executor.
        resolved, owned = resolve_executor(executor,
                                           max_workers=max_workers)
        if self._owns_executor:
            self.executor.close()
        self.executor, self._owns_executor = resolved, owned
        return self

    def close(self) -> None:
        """Shut down the executor pool this session owns (one built
        from a name spec); shared instances are left to their owner."""
        if self._owns_executor:
            self.executor.close()
            self._owns_executor = False

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def derive(self, *, engine: str | DiffEngine | None = None,
               config: ViewDiffConfig | None = None,
               filter: TraceFilter | None = None,
               mode: str | None = None,
               executor: "Executor | str | None" = None,
               cache: "DiffCache | str | Path | bool | None" = None
               ) -> "Session":
        """A sibling session sharing this one's store, key table,
        executor (pool included), and diff cache (one handle, so every
        derived job of a batch hits the same memoisation), with
        overrides (the pipeline gives each job its own derived
        session)."""
        return Session(
            config=config if config is not None else self.config,
            filter=filter if filter is not None else self.filter,
            store=self.store,
            engine=engine if engine is not None else self.engine,
            mode=mode if mode is not None else self.mode,
            record_fields=self.record_fields,
            key_table=self.key_table,
            executor=executor if executor is not None else self.executor,
            cache=cache if cache is not None else self.cache,
        )

    # -- lifecycle: capture / ingest ---------------------------------------

    def _capture_task(self, func: Callable, args: tuple, kwargs: dict,
                      name: str) -> CaptureTask:
        return CaptureTask(func=func, args=args, kwargs=kwargs, name=name,
                           filter=self.filter,
                           record_fields=self.record_fields)

    def _ingest_table(self) -> KeyTable | None:
        return self.key_table if self.config.interned else None

    def capture(self, func: Callable, *args, name: str = "",
                store_as: str | None = None,
                tags: tuple[str, ...] = (), dedup: bool = False,
                scenario: str | None = None, **kwargs) -> CaptureResult:
        """Trace one run under this session's filter.

        The session's executor decides where the capture runs: under
        :data:`CAPTURE_LOCK` in-process (serial / threads), or in a
        worker process owning its own weaver (``processes`` — ``func``
        and its arguments must then be picklable).  ``store_as``
        persists the trace to the session store immediately (requires
        :meth:`with_store`); ``dedup=True`` skips the write when a
        byte-identical trace is already stored, ``scenario`` is catalog
        metadata for ``repro query``.
        """
        task = self._capture_task(func, args, kwargs, name)
        outcome = run_capture_tasks([task], self.executor,
                                    key_table=self._ingest_table())[0]
        if store_as is not None:
            self._store_required().save(outcome.trace, key=store_as,
                                        tags=tags, dedup=dedup,
                                        scenario=scenario)
        return outcome.capture_result()

    def capture_batch(self, tasks: "list[CaptureTask]"
                      ) -> "list[CaptureOutcome]":
        """Evaluate many capture tasks through the session's executor
        (truly concurrently under a process executor), interning every
        trace into the session's key table."""
        return run_capture_tasks(tasks, self.executor,
                                 key_table=self._ingest_table())

    def trace_call(self, func: Callable, *args, name: str = "",
                   **kwargs) -> Trace:
        """Trace one run, returning just the trace."""
        return self.capture(func, *args, name=name, **kwargs).trace

    def ingest(self, source: Trace | str | Path,
               store_as: str | None = None,
               tags: tuple[str, ...] = (), *, dedup: bool = False,
               scenario: str | None = None) -> Trace:
        """Bring an existing trace (object or serialised file) into the
        session, optionally persisting it to the store."""
        trace = self.resolve_trace(source)
        if store_as is not None:
            self._store_required().save(trace, key=store_as, tags=tags,
                                        dedup=dedup, scenario=scenario)
        return trace

    def resolve_trace(self, ref: Trace | str | Path) -> Trace:
        """Trace objects pass through; strings/paths resolve first as
        store keys, then as trace file paths."""
        if isinstance(ref, Trace):
            return ref
        if self.store is not None and isinstance(ref, str) \
                and ref in self.store:
            return self.store.load(ref)
        path = Path(ref)
        if path.exists():
            from repro.analysis.serialize import load_trace
            return load_trace(path)
        if self.store is not None:
            raise KeyError(f"{ref!r} is neither a store key of "
                           f"{self.store.root} nor a trace file")
        raise FileNotFoundError(f"no trace file {ref!r} "
                                f"(and the session has no store)")

    def _store_required(self) -> TraceStore:
        if self.store is None:
            raise RuntimeError("this session has no trace store; call "
                               "with_store(...) first")
        return self.store

    # -- lifecycle: diff / analyze -----------------------------------------

    def diff(self, left: Trace | str | Path, right: Trace | str | Path,
             *, engine: str | DiffEngine | None = None,
             counter: OpCounter | None = None,
             budget: MemoryBudget | None = None,
             use_cache: bool = True) -> DiffResult:
        """Difference two traces (objects, store keys, or file paths).

        With ``config.interned`` the pair shares one key table: the
        table both traces already carry when it is common (this
        session's captures), a fresh pair table otherwise.  Engines
        registered before interning existed are called without the
        ``key_table`` kwarg.

        When the session carries a :class:`~repro.cache.DiffCache` and
        the backend advertises ``cacheable``, the cache is consulted
        *before* any planning (content digests + canonical config);
        ``use_cache=False`` forces a cold computation without touching
        the cache (the CLI's ``--no-cache``).

        A session with a store also appends one row of diff statistics
        to the store's catalog (``repro query --diffs`` reads them
        back) — best-effort, never failing the diff itself.
        """
        backend = self.engine if engine is None else get_engine(engine)
        left_trace = self.resolve_trace(left)
        right_trace = self.resolve_trace(right)
        kwargs = {}
        if self.config.interned and accepts_key_table(backend):
            kwargs["key_table"] = KeyTable.for_pair(left_trace, right_trace)
        if self.executor.name != "serial" and accepts_executor(backend):
            kwargs["executor"] = self.executor
        cache = self.cache if use_cache else None
        hits_before = cache.hits if cache is not None else 0
        started = time.perf_counter()
        result = cached_engine_diff(cache, backend, left_trace,
                                    right_trace, config=self.config,
                                    counter=counter, budget=budget,
                                    **kwargs)
        if self.store is not None:
            self._record_diff_stat(
                left_trace, right_trace, backend.name, result,
                seconds=time.perf_counter() - started,
                cached=(cache is not None and cache.hits > hits_before))
        return result

    def _record_diff_stat(self, left: Trace, right: Trace, engine: str,
                          result: DiffResult, *, seconds: float,
                          cached: bool) -> None:
        try:
            self.store.index.record_diff(
                left.content_digest(), right.content_digest(), engine,
                num_diffs=result.num_diffs(),
                sequences=len(result.sequences),
                compares=(result.counter.compares
                          if result.counter is not None else 0),
                seconds=seconds, cached=cached)
        except OSError:  # pragma: no cover - unwritable index.d
            pass

    def web(self, trace: Trace | str | Path) -> ViewWeb:
        """Build the view web of a trace (for navigation / Table 2)."""
        return ViewWeb(self.resolve_trace(trace))

    def analyze(self, suspected: DiffResult,
                expected: DiffResult | None = None,
                regression: DiffResult | None = None,
                mode: str | None = None) -> RegressionReport:
        """The Sec. 4 set algebra over already-computed diffs."""
        return analyze_regression(
            suspected, expected=expected, regression=regression,
            mode=self.mode if mode is None else mode)

    # -- the Sec. 4 recipe ---------------------------------------------------

    def run_scenario(self, old_version: Callable, new_version: Callable,
                     regressing_input, correct_input=None, *,
                     name: str = "",
                     engine: str | DiffEngine | None = None,
                     mode: str | None = None,
                     store_prefix: str | None = None,
                     static_impact: "bool | str" = False,
                     old_program=None,
                     new_program=None) -> SessionResult:
        """Capture the four-trace recipe and analyse it.

        Traces collected (Sec. 4.2): old and new versions on the
        regressing input (suspected set A); old and new on the correct
        input (expected set B); and, on the new version, correct vs
        regressing input (regression set C).  ``correct_input=None``
        skips B and C, modelling the unattended-build configuration of
        Sec. 5.1.

        ``store_prefix`` persists every captured trace to the session
        store under ``<prefix>/<role>`` keys, so the scenario can be
        re-analysed offline (``run_stored_scenario``).

        The whole capture phase runs as one batch through the session's
        executor — under a process executor the four roles are captured
        truly concurrently, each in a worker owning its own weaver.

        ``static_impact`` folds in the :mod:`repro.static` layer: pass
        a bundled ``repro.lang`` scenario name (``static_impact=
        "minidb"``) or ``True`` with ``old_program``/``new_program``
        Program ASTs.  The prediction is cross-validated against the
        dynamic ImpactReport (``result.static_impact``) and, under an
        anchored config, its predicted-impacted method names are fed
        to the differ as ``anchor_method_hints`` — anchors then prefer
        predicted-stable regions (results are unchanged: hints only
        bar candidacy).

        Version callables receive the input as their single argument.
        """
        started = time.perf_counter()
        validation = self._static_validation(static_impact, old_program,
                                             new_program, name)
        restore_config = None
        if validation is not None and validation.prediction is not None \
                and self.config.anchored:
            hints = validation.prediction.method_hints()
            if hints:
                restore_config = self.config
                self.config = dataclasses.replace(
                    self.config, anchor_method_hints=hints)
        traces: dict[str, Trace] = {}
        store_keys: list[str] = []
        workers: list[str] = []

        roles: list[tuple[str, Callable, object]] = [
            ("old/regressing", old_version, regressing_input),
            ("new/regressing", new_version, regressing_input)]
        if correct_input is not None:
            roles.append(("old/correct", old_version, correct_input))
            roles.append(("new/correct", new_version, correct_input))
        outcomes = self.capture_batch(
            [self._capture_task(runner, (payload,), {}, role)
             for role, runner, payload in roles])
        for (role, _runner, _payload), outcome in zip(roles, outcomes):
            traces[role] = outcome.trace
            if outcome.worker and outcome.worker not in workers:
                workers.append(outcome.worker)
            if store_prefix is not None:
                key = f"{store_prefix}/{role}"
                store_keys.append(key)
                self._store_required().save(outcome.trace, key=key,
                                            scenario=name or store_prefix)

        try:
            suspected = self.diff(traces["old/regressing"],
                                  traces["new/regressing"], engine=engine)
            expected = None
            regression = None
            if correct_input is not None:
                expected = self.diff(traces["old/correct"],
                                     traces["new/correct"], engine=engine)
                regression = self.diff(traces["new/correct"],
                                       traces["new/regressing"],
                                       engine=engine)
        finally:
            if restore_config is not None:
                self.config = restore_config

        report = self.analyze(suspected, expected=expected,
                              regression=regression, mode=mode)
        backend = self.engine if engine is None else get_engine(engine)
        return SessionResult(
            suspected=suspected,
            expected=expected,
            regression=regression,
            report=report,
            traces=traces,
            seconds=time.perf_counter() - started,
            engine=backend.name,
            scenario=name,
            store_keys=tuple(store_keys),
            workers=tuple(workers),
            static_impact=validation,
        )

    @staticmethod
    def _static_validation(static_impact: "bool | str", old_program,
                           new_program, name: str):
        """Resolve the ``static_impact`` knob of :meth:`run_scenario`
        into a cross-validated prediction (or ``None``)."""
        if not static_impact:
            return None
        from repro.static.scenarios import get_scenario
        from repro.static.validate import cross_validate
        if isinstance(static_impact, str):
            scenario = get_scenario(static_impact)
            old_program = scenario.old_program()
            new_program = scenario.new_program()
            label = static_impact
        elif old_program is None or new_program is None:
            raise ValueError(
                "static_impact=True needs old_program/new_program "
                "(repro.lang Program ASTs); pass a bundled scenario "
                "name instead to use its versions "
                "(static_impact='minidb')")
        else:
            label = name or "<programs>"
        return cross_validate(label, old_program, new_program)

    def run_stored_scenario(self, suspected: tuple[str, str],
                            expected: tuple[str, str] | None = None,
                            regression: tuple[str, str] | None = None, *,
                            name: str = "",
                            engine: str | DiffEngine | None = None,
                            mode: str | None = None) -> SessionResult:
        """The offline half of the recipe: diff + analyse trace pairs
        already sitting in the store (or on disk), no capture."""
        started = time.perf_counter()
        traces: dict[str, Trace] = {}

        def pair(refs: tuple[str, str],
                 roles: tuple[str, str]) -> DiffResult:
            left, right = (self.resolve_trace(r) for r in refs)
            traces.setdefault(roles[0], left)
            traces.setdefault(roles[1], right)
            return self.diff(left, right, engine=engine)

        suspected_d = pair(tuple(suspected),
                           ("old/regressing", "new/regressing"))
        expected_d = pair(tuple(expected), ("old/correct", "new/correct")) \
            if expected else None
        regression_d = pair(tuple(regression),
                            ("new/correct", "new/regressing")) \
            if regression else None
        report = self.analyze(suspected_d, expected=expected_d,
                              regression=regression_d, mode=mode)
        backend = self.engine if engine is None else get_engine(engine)
        return SessionResult(
            suspected=suspected_d,
            expected=expected_d,
            regression=regression_d,
            report=report,
            traces=traces,
            seconds=time.perf_counter() - started,
            engine=backend.name,
            scenario=name,
        )
