"""Persistent trace store: capture now, diff later.

RPRISM's workflow is offline — traces are captured (and segmented) to
disk while the program runs and analysed afterwards.  A
:class:`TraceStore` is a directory of JSONL trace files (the
:mod:`repro.analysis.serialize` format) addressed by key, with a small
sidecar index for tags::

    store = TraceStore("traces/")
    store.save(trace, key="old/regressing", tags=("myfaces", "bad"))
    later = store.load("old/regressing")
    for record in store.records(tag="bad"):
        print(record.key, record.entries)

Keys may contain ``/`` (sessions namespace the four-trace recipe as
``<scenario>/old/regressing`` etc.); they are sanitised to flat file
names on disk.  Trace name and entry counts are always read from the
file headers, so files dropped into the directory by other tools are
picked up; only tags live in the index.

Writes are safe under concurrent writers — threads of one process *and*
separate processes (the execution layer's capture workers persist
traces from wherever they run).  Every file lands via write-to-unique-
temp + ``os.replace`` (readers never observe a half-written trace or
index), and index read-modify-writes are serialised through an advisory
``flock`` on a sidecar lock file where the platform provides one.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import count
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.analysis.serialize import (load_trace, read_header,
                                      read_key_table, save_trace)
from repro.core.keytable import KeyTable
from repro.core.traces import Trace

INDEX_NAME = "store.json"
LOCK_NAME = "store.lock"
INDEX_VERSION = 1
_SUFFIX = ".jsonl"

#: Per-process uniquifier for temp file names (pid alone is not enough:
#: one process may write the same target from several threads).
_TMP_SEQ = count()

#: Characters allowed verbatim in on-disk file stems.
_SAFE = set("abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


#: Portable lockfile fallback tuning (used where ``fcntl`` is absent).
LOCK_TIMEOUT_SECONDS = 10.0
STALE_LOCK_SECONDS = 30.0
_LOCK_POLL_SECONDS = 0.005


@contextmanager
def locked_file(path: Path, *,
                timeout: float = LOCK_TIMEOUT_SECONDS,
                stale: float = STALE_LOCK_SECONDS):
    """An exclusive advisory cross-process lock on ``path``.

    Where the platform provides ``fcntl``, this is a plain ``flock`` on
    the file (created if missing).  Elsewhere — and in tests that
    monkeypatch ``repro.api.store.fcntl`` to ``None`` — it falls back
    to a portable lockfile protocol: spin on ``O_CREAT|O_EXCL`` of a
    ``<path>.held`` sidecar, breaking locks whose file is older than
    ``stale`` seconds (a crashed holder never wedges the store), and
    raising ``TimeoutError`` after ``timeout`` seconds of contention.
    ``stale`` is therefore also the holder's deadline: a critical
    section that outlives it looks crashed to waiters and loses the
    lock — callers with legitimately long sections must pass a larger
    ``stale`` (or refresh the held file's mtime); the sections in this
    repo (index read-modify-writes, cache prune/clear) are bounded far
    below the default.
    Both the :class:`TraceStore` and the diff cache
    (:mod:`repro.cache`) serialise their read-modify-writes through
    this one discipline.
    """
    if fcntl is not None:
        with path.open("a") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)
        return
    held = path.with_name(path.name + ".held")
    deadline = time.monotonic() + timeout
    while True:
        try:
            descriptor = os.open(held, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - held.stat().st_mtime
            except OSError:  # holder released between open and stat
                continue
            if age > stale:
                _break_stale_lock(held, stale)
                continue
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"could not acquire lock {held} within {timeout}s "
                    f"(held for {age:.1f}s)")
            time.sleep(_LOCK_POLL_SECONDS)
            continue
        own = None
        try:
            try:
                own = os.fstat(descriptor)
                os.write(descriptor, str(os.getpid()).encode())
            finally:
                os.close(descriptor)
            yield
        finally:
            # Release only *our own* lock file: if a waiter mistook a
            # long critical section for a crash and broke our lock, the
            # path may now name a peer's live lock — deleting that
            # would cascade the mutual-exclusion loss.
            try:
                current = os.stat(held)
                if own is None or (current.st_ino, current.st_dev) == \
                        (own.st_ino, own.st_dev):
                    held.unlink()
            except OSError:  # pragma: no cover - removed by a peer
                pass
        return


def _break_stale_lock(held: Path, stale: float) -> None:
    """Remove a crashed holder's lock file without ever deleting a
    *live* one.

    A blind ``unlink`` would race: two waiters both judge the file
    stale, the first breaks it and immediately re-acquires, and the
    second's unlink then deletes the winner's *fresh* lock — two
    holders at once.  Instead the break is claimed by an atomic rename
    to a waiter-unique tombstone (exactly one renamer wins; losers just
    respin), the tombstone's own mtime is re-checked, and a fresh lock
    caught in the window is put back via ``os.link`` — which refuses to
    clobber, so a lock re-acquired meanwhile is never overwritten.
    """
    tombstone = held.with_name(
        f"{held.name}.{os.getpid()}.{next(_TMP_SEQ)}.stale")
    try:
        # Re-judge staleness immediately before acting: the caller's
        # stat may be arbitrarily old by now (another waiter may have
        # broken and re-acquired in between).
        if time.time() - held.stat().st_mtime <= stale:
            return
        os.rename(held, tombstone)
    except OSError:  # someone else claimed the break first
        return
    try:
        fresh = time.time() - tombstone.stat().st_mtime <= stale
    except OSError:
        return
    if fresh:
        # We renamed a lock that was re-acquired between our stat and
        # the rename: restore it to its owner (unless a third waiter
        # took the name meanwhile — neither restore path clobbers).
        # ``link`` preserves the inode, so the owner's identity-checked
        # release still works; filesystems without hardlinks fall back
        # to an O_EXCL create-and-copy, where the owner's release skips
        # the (new-inode) file and the lock ages out over ``stale``
        # seconds instead of mutual exclusion being lost.
        try:
            os.link(tombstone, held)
        except OSError:
            try:
                descriptor = os.open(held,
                                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except OSError:
                pass
            else:
                try:
                    os.write(descriptor, tombstone.read_bytes())
                except OSError:
                    pass
                finally:
                    os.close(descriptor)
    try:
        tombstone.unlink()
    except OSError:  # pragma: no cover - cleaned up by a peer
        pass


def _stem_for(key: str) -> str:
    """Key -> file stem (``/`` becomes ``__``, exotic chars ``-``)."""
    out = []
    for ch in key:
        if ch == "/":
            out.append("__")
        elif ch in _SAFE:
            out.append(ch)
        else:
            out.append("-")
    return "".join(out)


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One stored trace as the store lists it (header + tags)."""

    key: str
    path: Path
    name: str
    entries: int
    tags: tuple[str, ...] = ()
    metadata: dict = field(default_factory=dict)

    def brief(self) -> str:
        tags = f" [{', '.join(self.tags)}]" if self.tags else ""
        return f"{self.key:32} {self.entries:>7} entries{tags}"


class TraceStore:
    """A directory of serialised traces addressed by key."""

    def __init__(self, root: str | Path, create: bool = True):
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise FileNotFoundError(f"no trace store at {self.root}")
        self._lock = threading.Lock()

    # -- write serialisation -------------------------------------------------

    def _tmp_path(self, target: Path) -> Path:
        """A writer-unique sibling temp path for ``target`` (unique
        across processes *and* threads, so concurrent writers never
        clobber each other's in-flight bytes)."""
        return target.with_name(
            f".{target.name}.{os.getpid()}.{next(_TMP_SEQ)}.tmp")

    @contextmanager
    def _locked(self):
        """Serialise an index read-modify-write against every other
        writer: the instance lock covers this process's threads, and
        :func:`locked_file` on a sidecar file covers other processes
        (``flock`` where available, the portable lockfile protocol
        elsewhere)."""
        with self._lock:
            with locked_file(self.root / LOCK_NAME):
                yield

    def _atomic_write(self, target: Path, writer) -> None:
        """Run ``writer(tmp_path)`` then atomically publish the file."""
        tmp = self._tmp_path(target)
        try:
            writer(tmp)
            os.replace(tmp, target)
        finally:
            if tmp.exists():
                tmp.unlink()

    # -- index (tags + key<->file mapping) ---------------------------------

    def _index_path(self) -> Path:
        return self.root / INDEX_NAME

    def _read_index(self) -> dict:
        path = self._index_path()
        if not path.exists():
            return {"version": INDEX_VERSION, "traces": {}}
        index = json.loads(path.read_text(encoding="utf-8"))
        if index.get("version") != INDEX_VERSION:
            raise ValueError(f"unsupported store index: {path}")
        return index

    def _write_index(self, index: dict) -> None:
        text = json.dumps(index, indent=1, sort_keys=True) + "\n"
        self._atomic_write(
            self._index_path(),
            lambda tmp: tmp.write_text(text, encoding="utf-8"))

    def _entry_for(self, index: dict, key: str) -> dict:
        entry = index["traces"].get(key)
        if entry is not None:
            return entry
        # Sanitisation is lossy ("a/b" and "a__b" share a stem), so a
        # fresh key colliding with another key's file — or with a loose
        # file that belongs to a different key — gets a hash suffix.
        file_name = _stem_for(key) + _SUFFIX
        taken = {e["file"] for e in index["traces"].values()}
        if file_name not in taken:
            on_disk = self.root / file_name
            if on_disk.exists() and self._key_of(on_disk) != key:
                taken.add(file_name)
        if file_name in taken:
            digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:8]
            file_name = f"{_stem_for(key)}-{digest}{_SUFFIX}"
        entry = {"file": file_name, "tags": []}
        index["traces"][key] = entry
        return entry

    def _key_of(self, path: Path) -> str | None:
        """The store key a loose trace file carries (None: unreadable)."""
        try:
            header = read_header(path)
        except (ValueError, OSError):
            return None
        return (header.get("metadata", {}).get("store_key")
                or path.name[:-len(_SUFFIX)])

    def _path_for(self, key: str, index: dict | None = None) -> Path:
        if index is None:
            index = self._read_index()
        entry = index["traces"].get(key)
        if entry is not None:
            return self.root / entry["file"]
        # Unindexed key (loose files, e.g. a store copied without its
        # store.json): the stem is only a guess — a colliding key may
        # own that file name, so trust the header's store_key and fall
        # back to scanning for the file that actually carries the key.
        guess = self.root / (_stem_for(key) + _SUFFIX)
        if guess.exists() and self._key_of(guess) == key:
            return guess
        for path in sorted(self.root.glob("*" + _SUFFIX)):
            if self._key_of(path) == key:
                return path
        return guess

    # -- write side ---------------------------------------------------------

    def save(self, trace: Trace, key: str | None = None,
             tags: tuple[str, ...] = ()) -> TraceRecord:
        """Serialise ``trace`` under ``key`` (default: its name)."""
        if key is None:
            key = trace.name
        if not key:
            raise ValueError("a store key is required for unnamed traces")
        # Serialise the (possibly large) trace body *outside* the lock
        # — concurrent writers only serialise on the index RMW and a
        # rename, not on each other's O(trace) JSON dumps.
        tmp = self._tmp_path(self.root / "trace")
        try:
            save_trace(trace, tmp, extra_metadata={
                "store_key": key,
                # The strong identity (cache key material, and what the
                # `store diff` hint compares); the cheap fingerprint is
                # kept for provenance only — it collides across traces
                # with equal shape but different content.
                "digest": trace.content_digest(),
                "fingerprint": trace.fingerprint(),
            })
            with self._locked():
                index = self._read_index()
                entry = self._entry_for(index, key)
                entry["tags"] = sorted(set(entry["tags"]) | set(tags))
                os.replace(tmp, self.root / entry["file"])
                self._write_index(index)
        finally:
            if tmp.exists():
                tmp.unlink()
        return self.get(key)

    def ingest_file(self, source: str | Path, key: str | None = None,
                    tags: tuple[str, ...] = ()) -> TraceRecord:
        """Copy an existing trace file into the store (re-serialised,
        so format problems surface at ingest time, not diff time)."""
        source = Path(source)
        trace = load_trace(source)
        return self.save(trace, key=key or trace.name or source.stem,
                         tags=tags)

    def tag(self, key: str, *tags: str) -> TraceRecord:
        with self._locked():
            index = self._read_index()
            if key not in index["traces"]:
                self._require(key)
                self._entry_for(index, key)
            entry = index["traces"][key]
            entry["tags"] = sorted(set(entry["tags"]) | set(tags))
            self._write_index(index)
        return self.get(key)

    def untag(self, key: str, *tags: str) -> TraceRecord:
        with self._locked():
            index = self._read_index()
            entry = index["traces"].get(key)
            if entry is not None:
                entry["tags"] = sorted(set(entry["tags"]) - set(tags))
                self._write_index(index)
        return self.get(key)

    def delete(self, key: str) -> None:
        with self._locked():
            index = self._read_index()
            entry = index["traces"].pop(key, None)
            path = (self.root / entry["file"] if entry is not None
                    else self.root / (_stem_for(key) + _SUFFIX))
            if path.exists():
                path.unlink()
            self._write_index(index)

    # -- read side ----------------------------------------------------------

    def _require(self, key: str, index: dict | None = None) -> Path:
        path = self._path_for(key, index)
        if not path.exists():
            raise KeyError(f"no trace {key!r} in store {self.root}")
        return path

    def load(self, key: str) -> Trace:
        """The full trace stored under ``key``."""
        return load_trace(self._require(key))

    def load_key_table(self, key: str) -> KeyTable:
        """Just the interned ``=e`` key table of a stored trace — no
        entry materialisation for v2 files (v1 files are streamed)."""
        _header, table = read_key_table(self._require(key))
        return table

    def _record_for(self, key: str, index: dict) -> TraceRecord:
        path = self._require(key, index)
        header = read_header(path)
        entry = index["traces"].get(key) or {}
        return TraceRecord(
            key=key,
            path=path,
            name=header.get("name", ""),
            entries=header.get("entries", -1),
            tags=tuple(entry.get("tags", ())),
            metadata=header.get("metadata") or {},
        )

    def get(self, key: str) -> TraceRecord:
        """Header + tags for one stored trace (cheap: no entry parse)."""
        return self._record_for(key, self._read_index())

    def _keys(self, index: dict) -> list[str]:
        known = dict(index["traces"])
        files_seen = {entry["file"] for entry in known.values()}
        keys = set(known)
        for path in sorted(self.root.glob("*" + _SUFFIX)):
            if path.name in files_seen:
                continue
            # Loose file dropped in by another tool; unreadable ones
            # (foreign formats, truncated writes) are skipped so one
            # junk file cannot take down the whole listing.
            key = self._key_of(path)
            if key is not None:
                keys.add(key)
        return sorted(keys)

    def keys(self) -> list[str]:
        """Every stored key: indexed ones plus loose ``.jsonl`` files."""
        return self._keys(self._read_index())

    def records(self, tag: str | None = None) -> list[TraceRecord]:
        """List stored traces, optionally only those carrying ``tag``."""
        index = self._read_index()
        records = []
        for key in self._keys(index):
            try:
                records.append(self._record_for(key, index))
            except (KeyError, ValueError, OSError):
                continue  # deleted or corrupted underneath the listing
        if tag is not None:
            records = [r for r in records if tag in r.tags]
        return records

    def __contains__(self, key: str) -> bool:
        return self._path_for(key).exists()

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:
        return f"TraceStore({str(self.root)!r}, {len(self)} trace(s))"
