"""Persistent trace store: capture now, diff later.

RPRISM's workflow is offline — traces are captured (and segmented) to
disk while the program runs and analysed afterwards.  A
:class:`TraceStore` is a directory of JSONL trace files (the
:mod:`repro.analysis.serialize` format) addressed by key, with a small
sidecar index for tags::

    store = TraceStore("traces/")
    store.save(trace, key="old/regressing", tags=("myfaces", "bad"))
    later = store.load("old/regressing")
    for record in store.records(tag="bad"):
        print(record.key, record.entries)

Keys may contain ``/`` (sessions namespace the four-trace recipe as
``<scenario>/old/regressing`` etc.); they are sanitised to flat file
names on disk.  Trace name and entry counts are always read from the
file headers, so files dropped into the directory by other tools are
picked up; only tags live in the index.

Writes are safe under concurrent writers — threads of one process *and*
separate processes (the execution layer's capture workers persist
traces from wherever they run).  Every file lands via write-to-unique-
temp + ``os.replace`` (readers never observe a half-written trace or
index), and index read-modify-writes are serialised through an advisory
``flock`` on a sidecar lock file where the platform provides one.

Two directory **layouts** share one API:

* **flat** (the legacy default): trace files and ``store.json`` at the
  store root — fine up to a few thousand traces, but every save
  rewrites the whole index.
* **sharded** (``layout="sharded"``, auto-detected thereafter): files
  live under ``shards.d/<hh>/`` where ``hh`` is a digest prefix of the
  *key*, each shard carrying its own ``shard.json`` index and lock —
  key→file resolution stays O(1) and index read-modify-writes touch
  one small shard no matter how many million traces the store holds.
  :meth:`TraceStore.migrate_to_sharded` converts a flat store in
  place; until then (and through a crashed migration) sharded stores
  transparently fall back to flat-root files on lookups and adopt
  them into their shard on the next mutation.

Every save/tag/delete also maintains the store's persistent catalog
(:class:`repro.index.TraceIndex` under ``index.d/``), which is what
``save(dedup=True)`` consults to return an existing record instead of
writing a byte-identical duplicate.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import count
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.analysis.serialize import (load_trace, read_header,
                                      read_key_table, save_trace,
                                      wire_format)
from repro.core.keytable import KeyTable
from repro.core.traces import Trace

INDEX_NAME = "store.json"
LOCK_NAME = "store.lock"
INDEX_VERSION = 1
_SUFFIX = ".jsonl"

#: Sharded-layout names: trace files under ``shards.d/<hh>/`` with a
#: per-shard index + lock; the sidecar catalog lives in ``index.d``.
SHARDS_DIR = "shards.d"
SHARD_INDEX_NAME = "shard.json"
SHARD_LOCK_NAME = "shard.lock"
SHARD_WIDTH = 2
TRACE_INDEX_DIR = "index.d"

LAYOUTS = ("auto", "flat", "sharded")


def shard_of(key: str, width: int = SHARD_WIDTH) -> str:
    """The shard a key lives in: a hex prefix of the key's digest (so
    resolution needs no index at all, just a hash)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8)
    return digest.hexdigest()[:width]

#: Per-process uniquifier for temp file names (pid alone is not enough:
#: one process may write the same target from several threads).
_TMP_SEQ = count()

#: Characters allowed verbatim in on-disk file stems.
_SAFE = set("abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


#: Portable lockfile fallback tuning (used where ``fcntl`` is absent).
LOCK_TIMEOUT_SECONDS = 10.0
STALE_LOCK_SECONDS = 30.0
_LOCK_POLL_SECONDS = 0.005


@contextmanager
def locked_file(path: Path, *,
                timeout: float = LOCK_TIMEOUT_SECONDS,
                stale: float = STALE_LOCK_SECONDS):
    """An exclusive advisory cross-process lock on ``path``.

    Where the platform provides ``fcntl``, this is a plain ``flock`` on
    the file (created if missing).  Elsewhere — and in tests that
    monkeypatch ``repro.api.store.fcntl`` to ``None`` — it falls back
    to a portable lockfile protocol: spin on ``O_CREAT|O_EXCL`` of a
    ``<path>.held`` sidecar, breaking locks whose file is older than
    ``stale`` seconds (a crashed holder never wedges the store), and
    raising ``TimeoutError`` after ``timeout`` seconds of contention.
    ``stale`` is therefore also the holder's deadline: a critical
    section that outlives it looks crashed to waiters and loses the
    lock — callers with legitimately long sections must pass a larger
    ``stale`` (or refresh the held file's mtime); the sections in this
    repo (index read-modify-writes, cache prune/clear) are bounded far
    below the default.
    Both the :class:`TraceStore` and the diff cache
    (:mod:`repro.cache`) serialise their read-modify-writes through
    this one discipline.
    """
    if fcntl is not None:
        with path.open("a") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)
        return
    held = path.with_name(path.name + ".held")
    deadline = time.monotonic() + timeout
    while True:
        try:
            descriptor = os.open(held, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - held.stat().st_mtime
            except OSError:  # holder released between open and stat
                continue
            if age > stale:
                _break_stale_lock(held, stale)
                continue
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"could not acquire lock {held} within {timeout}s "
                    f"(held for {age:.1f}s)")
            time.sleep(_LOCK_POLL_SECONDS)
            continue
        own = None
        try:
            try:
                own = os.fstat(descriptor)
                os.write(descriptor, str(os.getpid()).encode())
            finally:
                os.close(descriptor)
            yield
        finally:
            # Release only *our own* lock file: if a waiter mistook a
            # long critical section for a crash and broke our lock, the
            # path may now name a peer's live lock — deleting that
            # would cascade the mutual-exclusion loss.
            try:
                current = os.stat(held)
                if own is None or (current.st_ino, current.st_dev) == \
                        (own.st_ino, own.st_dev):
                    held.unlink()
            except OSError:  # pragma: no cover - removed by a peer
                pass
        return


def _break_stale_lock(held: Path, stale: float) -> None:
    """Remove a crashed holder's lock file without ever deleting a
    *live* one.

    A blind ``unlink`` would race: two waiters both judge the file
    stale, the first breaks it and immediately re-acquires, and the
    second's unlink then deletes the winner's *fresh* lock — two
    holders at once.  Instead the break is claimed by an atomic rename
    to a waiter-unique tombstone (exactly one renamer wins; losers just
    respin), the tombstone's own mtime is re-checked, and a fresh lock
    caught in the window is put back via ``os.link`` — which refuses to
    clobber, so a lock re-acquired meanwhile is never overwritten.
    """
    tombstone = held.with_name(
        f"{held.name}.{os.getpid()}.{next(_TMP_SEQ)}.stale")
    try:
        # Re-judge staleness immediately before acting: the caller's
        # stat may be arbitrarily old by now (another waiter may have
        # broken and re-acquired in between).
        if time.time() - held.stat().st_mtime <= stale:
            return
        os.rename(held, tombstone)
    except OSError:  # someone else claimed the break first
        return
    try:
        fresh = time.time() - tombstone.stat().st_mtime <= stale
    except OSError:
        return
    if fresh:
        # We renamed a lock that was re-acquired between our stat and
        # the rename: restore it to its owner (unless a third waiter
        # took the name meanwhile — neither restore path clobbers).
        # ``link`` preserves the inode, so the owner's identity-checked
        # release still works; filesystems without hardlinks fall back
        # to an O_EXCL create-and-copy, where the owner's release skips
        # the (new-inode) file and the lock ages out over ``stale``
        # seconds instead of mutual exclusion being lost.
        try:
            os.link(tombstone, held)
        except OSError:
            try:
                descriptor = os.open(held,
                                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except OSError:
                pass
            else:
                try:
                    os.write(descriptor, tombstone.read_bytes())
                except OSError:
                    pass
                finally:
                    os.close(descriptor)
    try:
        tombstone.unlink()
    except OSError:  # pragma: no cover - cleaned up by a peer
        pass


def _stem_for(key: str) -> str:
    """Key -> file stem (``/`` becomes ``__``, exotic chars ``-``)."""
    out = []
    for ch in key:
        if ch == "/":
            out.append("__")
        elif ch in _SAFE:
            out.append(ch)
        else:
            out.append("-")
    return "".join(out)


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One stored trace as the store lists it (header + tags)."""

    key: str
    path: Path
    name: str
    entries: int
    tags: tuple[str, ...] = ()
    metadata: dict = field(default_factory=dict)
    #: Serialisation format version of the file on disk (1/2 text,
    #: 3 binary; 0 when the header predates format stamping).
    format: int = 0

    def brief(self) -> str:
        tags = f" [{', '.join(self.tags)}]" if self.tags else ""
        return f"{self.key:32} {self.entries:>7} entries{tags}"


@dataclass(frozen=True, slots=True)
class _Shard:
    """One index+lock+directory unit: the whole store in flat layout,
    one ``shards.d/<hh>/`` directory in sharded layout."""

    directory: Path
    index_path: Path
    lock_path: Path


class TraceStore:
    """A directory of serialised traces addressed by key."""

    def __init__(self, root: str | Path, create: bool = True,
                 layout: str = "auto"):
        if layout not in LAYOUTS:
            raise ValueError(f"unknown store layout {layout!r} "
                             f"(expected one of: {', '.join(LAYOUTS)})")
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise FileNotFoundError(f"no trace store at {self.root}")
        self._lock = threading.Lock()
        self._trace_index = None
        detected = (self.root / SHARDS_DIR).is_dir()
        if layout == "flat" and detected:
            raise ValueError(f"{self.root} already uses the sharded "
                             f"layout; open it with layout='auto'")
        self.sharded = detected
        if layout == "sharded" and not detected:
            # Transparent adoption: a fresh directory just gains
            # shards.d, a flat legacy store is migrated in place.
            self.migrate_to_sharded()

    @property
    def index(self):
        """The store's persistent catalog
        (:class:`repro.index.TraceIndex` under ``index.d/``), created
        lazily on first append."""
        if self._trace_index is None:
            from repro.index import TraceIndex
            self._trace_index = TraceIndex(self.root / TRACE_INDEX_DIR)
        return self._trace_index

    # -- layout --------------------------------------------------------------

    def _flat_shard(self) -> _Shard:
        return _Shard(self.root, self.root / INDEX_NAME,
                      self.root / LOCK_NAME)

    def _shard_for(self, key: str) -> _Shard:
        if not self.sharded:
            return self._flat_shard()
        directory = self.root / SHARDS_DIR / shard_of(key)
        return _Shard(directory, directory / SHARD_INDEX_NAME,
                      directory / SHARD_LOCK_NAME)

    def _shards(self) -> list[_Shard]:
        """Every shard that exists on disk (list/iteration side)."""
        if not self.sharded:
            return [self._flat_shard()]
        base = self.root / SHARDS_DIR
        shards = []
        for directory in sorted(p for p in base.iterdir()
                                if p.is_dir()):
            shards.append(_Shard(directory,
                                 directory / SHARD_INDEX_NAME,
                                 directory / SHARD_LOCK_NAME))
        return shards

    # -- write serialisation -------------------------------------------------

    def _tmp_path(self, target: Path) -> Path:
        """A writer-unique sibling temp path for ``target`` (unique
        across processes *and* threads, so concurrent writers never
        clobber each other's in-flight bytes)."""
        return target.with_name(
            f".{target.name}.{os.getpid()}.{next(_TMP_SEQ)}.tmp")

    @contextmanager
    def _locked(self, shard: _Shard):
        """Serialise a shard's index read-modify-write against every
        other writer: the instance lock covers this process's threads,
        and :func:`locked_file` on the shard's sidecar file covers
        other processes (``flock`` where available, the portable
        lockfile protocol elsewhere)."""
        with self._lock:
            shard.directory.mkdir(parents=True, exist_ok=True)
            with locked_file(shard.lock_path):
                yield

    def _atomic_write(self, target: Path, writer) -> None:
        """Run ``writer(tmp_path)`` then atomically publish the file."""
        tmp = self._tmp_path(target)
        try:
            writer(tmp)
            os.replace(tmp, target)
        finally:
            if tmp.exists():
                tmp.unlink()

    # -- index (tags + key<->file mapping) ---------------------------------

    def _read_index(self, shard: _Shard) -> dict:
        path = shard.index_path
        if not path.exists():
            return {"version": INDEX_VERSION, "traces": {}}
        index = json.loads(path.read_text(encoding="utf-8"))
        if index.get("version") != INDEX_VERSION:
            raise ValueError(f"unsupported store index: {path}")
        return index

    def _write_index(self, shard: _Shard, index: dict) -> None:
        text = json.dumps(index, indent=1, sort_keys=True) + "\n"
        self._atomic_write(
            shard.index_path,
            lambda tmp: tmp.write_text(text, encoding="utf-8"))

    def _entry_for(self, index: dict, key: str, shard: _Shard) -> dict:
        entry = index["traces"].get(key)
        if entry is not None:
            return entry
        # Sanitisation is lossy ("a/b" and "a__b" share a stem), so a
        # fresh key colliding with another key's file — or with a loose
        # file that belongs to a different key — gets a hash suffix.
        file_name = _stem_for(key) + _SUFFIX
        taken = {e["file"] for e in index["traces"].values()}
        if file_name not in taken:
            on_disk = shard.directory / file_name
            if on_disk.exists() and self._key_of(on_disk) != key:
                taken.add(file_name)
        if file_name in taken:
            digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:8]
            file_name = f"{_stem_for(key)}-{digest}{_SUFFIX}"
        entry = {"file": file_name, "tags": []}
        index["traces"][key] = entry
        return entry

    def _key_of(self, path: Path) -> str | None:
        """The store key a loose trace file carries (None: unreadable)."""
        try:
            header = read_header(path)
        except (ValueError, OSError):
            return None
        return (header.get("metadata", {}).get("store_key")
                or path.name[:-len(_SUFFIX)])

    def _path_for(self, key: str, index: dict | None = None) -> Path:
        shard = self._shard_for(key)
        if index is None:
            index = self._read_index(shard)
        entry = index["traces"].get(key)
        if entry is not None:
            return shard.directory / entry["file"]
        # Unindexed key (loose files, e.g. a store copied without its
        # store.json): the stem is only a guess — a colliding key may
        # own that file name, so trust the header's store_key and fall
        # back to scanning for the file that actually carries the key.
        guess = shard.directory / (_stem_for(key) + _SUFFIX)
        if guess.exists() and self._key_of(guess) == key:
            return guess
        for path in sorted(shard.directory.glob("*" + _SUFFIX)):
            if self._key_of(path) == key:
                return path
        if self.sharded:
            # A flat remnant (mid-migration store): resolve against the
            # legacy root layout before giving up.
            flat = self._flat_path_for(key)
            if flat is not None:
                return flat
        return guess

    def _flat_path_for(self, key: str) -> Path | None:
        """Flat-layout resolution of ``key`` (the transparent fallback
        a sharded store uses for not-yet-migrated files)."""
        flat = self._flat_shard()
        try:
            entry = self._read_index(flat)["traces"].get(key)
        except ValueError:
            entry = None
        if entry is not None and (self.root / entry["file"]).exists():
            return self.root / entry["file"]
        guess = self.root / (_stem_for(key) + _SUFFIX)
        if guess.exists() and self._key_of(guess) == key:
            return guess
        for path in sorted(self.root.glob("*" + _SUFFIX)):
            if self._key_of(path) == key:
                return path
        return None

    # -- write side ---------------------------------------------------------

    def save(self, trace: Trace, key: str | None = None,
             tags: tuple[str, ...] = (), *, dedup: bool = False,
             scenario: str | None = None) -> TraceRecord:
        """Serialise ``trace`` under ``key`` (default: its name).

        ``dedup=True`` consults the catalog by content digest first: a
        byte-identical trace already in the store is returned (its tags
        merged with ``tags``) instead of a duplicate file being
        written — the returned record's ``key`` names the existing
        trace, which may differ from the requested one.  ``scenario``
        is catalog metadata (``repro query --scenario``).
        """
        if key is None:
            key = trace.name
        if not key:
            raise ValueError("a store key is required for unnamed traces")
        digest = trace.content_digest()
        if dedup:
            existing = self._dedup_hit(digest)
            if existing is not None:
                return self.tag(existing, *tags) if tags \
                    else self.get(existing)
        threads = len(trace.thread_ids())
        sketch = self._sketch(trace)
        extra = {
            "store_key": key,
            # The strong identity (cache key material, what dedup and
            # the `store diff` hint compare); the cheap fingerprint is
            # kept for provenance only — it collides across traces
            # with equal shape but different content.
            "digest": digest,
            "fingerprint": trace.fingerprint(),
            "threads": threads,
            "sketch": list(sketch),
        }
        if scenario:
            extra["scenario"] = scenario
        # Serialise the (possibly large) trace body *outside* the lock
        # — concurrent writers only serialise on the index RMW and a
        # rename, not on each other's O(trace) JSON dumps.
        shard = self._shard_for(key)
        shard.directory.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_path(shard.directory / "trace")
        try:
            save_trace(trace, tmp, extra_metadata=extra)
            with self._locked(shard):
                index = self._read_index(shard)
                entry = self._entry_for(index, key, shard)
                entry["tags"] = sorted(set(entry["tags"]) | set(tags))
                os.replace(tmp, shard.directory / entry["file"])
                self._write_index(shard, index)
                now = time.time()
                self._catalog(lambda catalog: catalog.record_save(
                    self._catalog_record(
                        key=key, digest=digest,
                        fingerprint=extra["fingerprint"],
                        entries=len(trace), threads=threads,
                        tags=tuple(entry["tags"]),
                        scenario=scenario or "", sketch=sketch,
                        saved_at=now, updated_at=now)))
        finally:
            if tmp.exists():
                tmp.unlink()
        return self.get(key)

    @staticmethod
    def _sketch(trace: Trace) -> tuple[str, ...]:
        from repro.index import trace_sketch
        return trace_sketch(trace)

    @staticmethod
    def _catalog_record(**fields):
        from repro.index import TraceIndexRecord
        return TraceIndexRecord(**fields)

    def _catalog(self, append) -> None:
        """Run one catalog append; a store whose ``index.d`` cannot be
        written (read-only mount, full disk) still stores traces — the
        catalog just goes stale until the next ``repro index build``."""
        try:
            append(self.index)
        except OSError:  # pragma: no cover - environment-dependent
            pass

    def _dedup_hit(self, digest: str) -> str | None:
        """The key of an existing trace with this content digest (and a
        file still on disk), or None.  Catalog-only: a legacy store
        needs one ``repro index build`` before dedup can see its
        pre-existing traces."""
        for record in self.index.by_digest(digest):
            if record.key in self:
                return record.key
        return None

    def ingest_file(self, source: str | Path, key: str | None = None,
                    tags: tuple[str, ...] = (), *, dedup: bool = False,
                    scenario: str | None = None) -> TraceRecord:
        """Copy an existing trace file into the store (re-serialised,
        so format problems surface at ingest time, not diff time)."""
        source = Path(source)
        trace = load_trace(source)
        return self.save(trace, key=key or trace.name or source.stem,
                         tags=tags, dedup=dedup, scenario=scenario)

    def tag(self, key: str, *tags: str) -> TraceRecord:
        shard = self._shard_for(key)
        with self._locked(shard):
            index = self._read_index(shard)
            if key not in index["traces"]:
                path = self._require(key, index)
                entry = self._entry_for(index, key, shard)
                target = shard.directory / entry["file"]
                if path != target:
                    # Adopt a loose / flat-remnant file into the shard
                    # the key resolves to (lazy per-key migration).
                    os.replace(path, target)
            entry = index["traces"][key]
            entry["tags"] = sorted(set(entry["tags"]) | set(tags))
            self._write_index(shard, index)
            self._catalog(lambda catalog: catalog.record_tags(
                key, entry["tags"]))
        return self.get(key)

    def untag(self, key: str, *tags: str) -> TraceRecord:
        shard = self._shard_for(key)
        with self._locked(shard):
            index = self._read_index(shard)
            entry = index["traces"].get(key)
            if entry is not None:
                entry["tags"] = sorted(set(entry["tags"]) - set(tags))
                self._write_index(shard, index)
                self._catalog(lambda catalog: catalog.record_tags(
                    key, entry["tags"]))
        return self.get(key)

    def delete(self, key: str) -> None:
        shard = self._shard_for(key)
        with self._locked(shard):
            index = self._read_index(shard)
            entry = index["traces"].pop(key, None)
            path = (shard.directory / entry["file"]
                    if entry is not None
                    else self._path_for(key, index))
            if path.exists():
                path.unlink()
            self._write_index(shard, index)
            self._catalog(lambda catalog: catalog.record_delete(key))

    # -- read side ----------------------------------------------------------

    def _require(self, key: str, index: dict | None = None) -> Path:
        path = self._path_for(key, index)
        if not path.exists():
            raise KeyError(f"no trace {key!r} in store {self.root}")
        return path

    def load(self, key: str) -> Trace:
        """The full trace stored under ``key``."""
        return load_trace(self._require(key))

    def load_key_table(self, key: str) -> KeyTable:
        """Just the interned ``=e`` key table of a stored trace — no
        entry materialisation for v2/v3 files (v1 files are
        streamed)."""
        _header, table = read_key_table(self._require(key))
        return table

    def _record_for(self, key: str, index: dict,
                    shard: _Shard | None = None) -> TraceRecord:
        entry = index["traces"].get(key)
        if shard is not None and entry is not None:
            # The caller knows which directory this index describes
            # (it may be the flat root of a mid-migration store, which
            # is *not* where ``_shard_for`` would place the key).
            path = shard.directory / entry["file"]
            if not path.exists():
                path = self._require(key)
        else:
            path = self._require(key, index)
        header = read_header(path)
        entry = index["traces"].get(key) or {}
        return TraceRecord(
            key=key,
            path=path,
            name=header.get("name", ""),
            entries=header.get("entries", -1),
            tags=tuple(entry.get("tags", ())),
            metadata=header.get("metadata") or {},
            format=header.get("format", 0),
        )

    def get(self, key: str) -> TraceRecord:
        """Header + tags for one stored trace (cheap: no entry parse)."""
        return self._record_for(
            key, self._read_index(self._shard_for(key)))

    def _keys(self, shard: _Shard, index: dict) -> list[str]:
        known = dict(index["traces"])
        files_seen = {entry["file"] for entry in known.values()}
        keys = set(known)
        for path in sorted(shard.directory.glob("*" + _SUFFIX)):
            if path.name in files_seen:
                continue
            # Loose file dropped in by another tool; unreadable ones
            # (foreign formats, truncated writes) are skipped so one
            # junk file cannot take down the whole listing.
            key = self._key_of(path)
            if key is not None:
                keys.add(key)
        return sorted(keys)

    def _key_sets(self) -> list[tuple[_Shard, list[str]]]:
        """Per-shard key lists; a sharded store also lists its flat
        root (not-yet-migrated remnants) as a trailing pseudo-shard."""
        sets = [(shard, self._keys(shard, self._read_index(shard)))
                for shard in self._shards()]
        if self.sharded:
            flat = self._flat_shard()
            try:
                flat_index = self._read_index(flat)
            except ValueError:
                flat_index = {"version": INDEX_VERSION, "traces": {}}
            sets.append((flat, self._keys(flat, flat_index)))
        return sets

    def keys(self) -> list[str]:
        """Every stored key: indexed ones plus loose ``.jsonl`` files."""
        keys = set()
        for _shard, shard_keys in self._key_sets():
            keys.update(shard_keys)
        return sorted(keys)

    def records(self, tag: str | None = None) -> list[TraceRecord]:
        """List stored traces, optionally only those carrying ``tag``."""
        records, seen = [], set()
        for shard, shard_keys in self._key_sets():
            index = self._read_index(shard)
            for key in shard_keys:
                if key in seen:
                    continue
                seen.add(key)
                try:
                    records.append(self._record_for(key, index, shard))
                except (KeyError, ValueError, OSError):
                    continue  # deleted or corrupted under the listing
        records.sort(key=lambda r: r.key)
        if tag is not None:
            records = [r for r in records if tag in r.tags]
        return records

    def __contains__(self, key: str) -> bool:
        return self._path_for(key).exists()

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:
        return f"TraceStore({str(self.root)!r}, {len(self)} trace(s))"

    # -- layout migration ----------------------------------------------------

    def migrate_to_sharded(self) -> int:
        """Convert a flat store to the sharded layout in place; the
        number of trace files moved is returned.

        The whole move runs under the flat root lock, so concurrent
        writers using the flat layout are held off; readers that raced
        past the layout probe still resolve — ``_path_for`` falls back
        to the flat root, and files linger there only if the migration
        crashes, in which case re-running it (or any per-key mutation,
        which adopts remnants lazily) finishes the job.  Idempotent:
        migrating an already-sharded store just sweeps remnants.
        """
        flat = self._flat_shard()
        moved = 0
        with self._lock:
            with locked_file(flat.lock_path):
                try:
                    flat_index = json.loads(
                        flat.index_path.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    flat_index = {"traces": {}}
                if flat_index.get("version", INDEX_VERSION) \
                        != INDEX_VERSION:
                    raise ValueError(
                        f"unsupported store index: {flat.index_path}")
                entries = dict(flat_index.get("traces", {}))
                file_to_key = {e["file"]: k for k, e in entries.items()}
                for path in sorted(self.root.glob("*" + _SUFFIX)):
                    key = file_to_key.get(path.name) \
                        or self._key_of(path)
                    if key is None:
                        continue  # unreadable junk stays put
                    if key not in entries:
                        entries[key] = {"file": path.name, "tags": []}
                self.sharded = True
                per_shard: dict[str, dict] = {}
                for key, entry in sorted(entries.items()):
                    source = self.root / entry["file"]
                    if not source.exists():
                        continue
                    shard = self._shard_for(key)
                    shard.directory.mkdir(parents=True, exist_ok=True)
                    index = per_shard.setdefault(
                        shard.directory.name,
                        self._read_index(shard))
                    target = self._entry_for(index, key, shard)
                    target["tags"] = sorted(
                        set(target["tags"]) | set(entry["tags"]))
                    os.replace(source, shard.directory / target["file"])
                    moved += 1
                for name, index in per_shard.items():
                    directory = self.root / SHARDS_DIR / name
                    self._write_index(
                        _Shard(directory,
                               directory / SHARD_INDEX_NAME,
                               directory / SHARD_LOCK_NAME), index)
                # Even an empty migration must leave the marker so the
                # layout survives reopening.
                (self.root / SHARDS_DIR).mkdir(exist_ok=True)
                if flat.index_path.exists():
                    flat.index_path.unlink()
        return moved

    # -- format migration ----------------------------------------------------

    def migrate_format(self, version: int | None = None) -> dict:
        """Rewrite every stored trace in serialisation ``version``
        (default: the session wire format — binary v3 unless
        overridden).  Keys, tags, paths and content digests are all
        preserved; only the file bytes change.  Files already in the
        target format are left untouched.  Returns a summary dict:
        ``{"version", "migrated", "skipped", "failed"}``.
        """
        version = wire_format(version)
        migrated, skipped, failed = 0, 0, 0
        for record in self.records():
            if record.format == version:
                skipped += 1
                continue
            shard = self._shard_for(record.key)
            try:
                trace = load_trace(record.path)
                tmp = self._tmp_path(record.path)
                try:
                    # Header metadata (store key, digest, provenance)
                    # rides on trace.metadata, so a bare re-save keeps
                    # it verbatim.
                    save_trace(trace, tmp, version=version)
                    with self._locked(shard):
                        os.replace(tmp, record.path)
                finally:
                    if tmp.exists():
                        tmp.unlink()
            except (OSError, ValueError, KeyError):
                failed += 1  # unreadable file: left as-is, reported
                continue
            migrated += 1
        return {"version": version, "migrated": migrated,
                "skipped": skipped, "failed": failed}

    def format_stats(self) -> dict:
        """Per-format census of the store: trace counts and on-disk
        bytes keyed by serialisation version, plus totals — what
        ``repro store stats`` prints."""
        formats: dict[int, dict] = {}
        total_traces, total_bytes = 0, 0
        for record in self.records():
            try:
                size = record.path.stat().st_size
            except OSError:
                continue  # deleted under the listing
            bucket = formats.setdefault(
                record.format, {"traces": 0, "bytes": 0})
            bucket["traces"] += 1
            bucket["bytes"] += size
            total_traces += 1
            total_bytes += size
        return {"formats": {str(v): formats[v]
                            for v in sorted(formats)},
                "traces": total_traces, "bytes": total_bytes}
