"""Impact analysis over views-based diffs.

Another of Sec. 4's envisioned applications: given the semantic diff of
two versions, which program abstractions — methods, classes, objects,
threads — are *impacted*, and how strongly?  The views an entry belongs
to are exactly the abstractions it touches, so impact sets fall directly
out of the web: each differing entry votes for its method view, its
target object's class, and its thread.

The result ranks abstractions by the number of differences touching
them, giving the "where did behaviour change" overview a developer scans
before drilling into difference sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.diffs import DiffResult
from repro.core.web import ViewWeb


@dataclass(slots=True)
class ImpactReport:
    """Differences counted per abstraction."""

    methods: dict[str, int] = field(default_factory=dict)
    classes: dict[str, int] = field(default_factory=dict)
    threads: dict[int, int] = field(default_factory=dict)
    total_differences: int = 0

    def ranked_methods(self) -> list[tuple[str, int]]:
        return sorted(self.methods.items(), key=lambda kv: (-kv[1], kv[0]))

    def ranked_classes(self) -> list[tuple[str, int]]:
        return sorted(self.classes.items(), key=lambda kv: (-kv[1], kv[0]))

    def impacted_thread_ids(self) -> list[int]:
        return sorted(self.threads)

    def render(self, limit: int = 10) -> str:
        lines = [f"impact: {self.total_differences} differences touch "
                 f"{len(self.methods)} method(s), {len(self.classes)} "
                 f"class(es), {len(self.threads)} thread(s)"]
        lines.append("  methods:")
        for method, count in self.ranked_methods()[:limit]:
            lines.append(f"    {method:40} {count}")
        lines.append("  classes:")
        for class_name, count in self.ranked_classes()[:limit]:
            lines.append(f"    {class_name:40} {count}")
        return "\n".join(lines)


def _accumulate(report: ImpactReport, trace, eids, web: ViewWeb) -> None:
    for eid in eids:
        entry = trace.entries[eid]
        report.total_differences += 1
        report.methods[entry.method] = \
            report.methods.get(entry.method, 0) + 1
        report.threads[entry.tid] = report.threads.get(entry.tid, 0) + 1
        target = entry.event.target()
        if target is not None:
            info = web.object_info(target)
            class_name = info.class_name if info else target.class_name
            report.classes[class_name] = \
                report.classes.get(class_name, 0) + 1


def impact_of(result: DiffResult,
              web_left: ViewWeb | None = None,
              web_right: ViewWeb | None = None) -> ImpactReport:
    """Impact sets of a diff: which abstractions its differences touch."""
    if web_left is None:
        web_left = ViewWeb(result.left)
    if web_right is None:
        web_right = ViewWeb(result.right)
    report = ImpactReport()
    _accumulate(report, result.left, result.left_diff_eids(), web_left)
    _accumulate(report, result.right, result.right_diff_eids(), web_right)
    return report


def impacted_methods(result: DiffResult, threshold: int = 1) -> set[str]:
    """Methods touched by at least ``threshold`` differences."""
    report = impact_of(result)
    return {method for method, count in report.methods.items()
            if count >= threshold}
