"""Object-protocol inference over target-object views.

Sec. 4 lists protocol inference among the analyses the views abstraction
enables ("we envision many types of dynamic analyses benefiting from our
views trace abstraction ... including object protocol inference").  This
module implements it: for each class, the call sequences observed in its
instances' target-object views are folded into a small automaton whose
states are "last method called"; the automaton is the class's observed
usage protocol.

Protocols support membership checks (would this call sequence be novel?)
and diffing across program versions — a lightweight typestate check on
top of the same trace substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import Call, Init
from repro.core.traces import Trace
from repro.core.views import ViewType
from repro.core.web import ViewWeb

#: Synthetic protocol states.
START = "<start>"


@dataclass(slots=True)
class Protocol:
    """Observed usage protocol of one class.

    ``transitions`` maps a state (the previously called method, or
    ``START`` right after construction) to the set of methods observed
    next; ``support`` counts observations per transition.
    """

    class_name: str
    transitions: dict[str, set[str]] = field(default_factory=dict)
    support: dict[tuple[str, str], int] = field(default_factory=dict)
    instances: int = 0

    def observe(self, sequence: list[str]) -> None:
        self.instances += 1
        state = START
        for method in sequence:
            self.transitions.setdefault(state, set()).add(method)
            key = (state, method)
            self.support[key] = self.support.get(key, 0) + 1
            state = method

    def allows(self, sequence: list[str]) -> bool:
        """True when every transition of the sequence was observed."""
        state = START
        for method in sequence:
            if method not in self.transitions.get(state, set()):
                return False
            state = method
        return True

    def methods(self) -> set[str]:
        observed: set[str] = set()
        for targets in self.transitions.values():
            observed |= targets
        return observed

    def transition_count(self) -> int:
        return sum(len(targets) for targets in self.transitions.values())

    def render(self) -> str:
        lines = [f"protocol {self.class_name} "
                 f"({self.instances} instance(s)):"]
        for state in sorted(self.transitions):
            for target in sorted(self.transitions[state]):
                count = self.support.get((state, target), 0)
                lines.append(f"  {state} -> {target}  (x{count})")
        return "\n".join(lines)


def call_sequence_of(view) -> list[str]:
    """The method-call sequence of one target-object view (init and
    calls only; field events are state, not protocol)."""
    sequence = []
    for entry in view:
        if isinstance(entry.event, Call):
            sequence.append(entry.event.method)
    return sequence


def infer_protocols(trace: Trace,
                    web: ViewWeb | None = None) -> dict[str, Protocol]:
    """Infer per-class protocols from all target-object views."""
    if web is None:
        web = ViewWeb(trace)
    protocols: dict[str, Protocol] = {}
    for name in web.view_names_of_type(ViewType.TARGET_OBJECT):
        view = web.view(name)
        info = web.objects.get(name.key)
        if view is None or info is None:
            continue
        # Only objects whose construction we saw yield a full protocol.
        has_init = any(isinstance(e.event, Init) for e in view)
        if not has_init:
            continue
        protocol = protocols.setdefault(info.class_name,
                                        Protocol(info.class_name))
        protocol.observe(call_sequence_of(view))
    return protocols


@dataclass(slots=True)
class ProtocolDiff:
    """Transitions gained/lost between two versions' protocols."""

    class_name: str
    added: list[tuple[str, str]]
    removed: list[tuple[str, str]]

    def is_empty(self) -> bool:
        return not self.added and not self.removed


def diff_protocols(old: dict[str, Protocol],
                   new: dict[str, Protocol]) -> list[ProtocolDiff]:
    """Compare protocols across versions (classes matched by name)."""
    diffs: list[ProtocolDiff] = []
    for class_name in sorted(set(old) | set(new)):
        old_edges = set()
        for state, targets in old.get(
                class_name, Protocol(class_name)).transitions.items():
            old_edges |= {(state, t) for t in targets}
        new_edges = set()
        for state, targets in new.get(
                class_name, Protocol(class_name)).transitions.items():
            new_edges |= {(state, t) for t in targets}
        diff = ProtocolDiff(
            class_name=class_name,
            added=sorted(new_edges - old_edges),
            removed=sorted(old_edges - new_edges))
        if not diff.is_empty():
            diffs.append(diff)
    return diffs
