"""The RPRISM tool layer: tracing drivers, serialisation, reporting,
and the further view-based analyses Sec. 4 envisions (protocol
inference, impact analysis)."""

from repro.analysis.impact import ImpactReport, impact_of, impacted_methods
from repro.analysis.protocols import (Protocol, ProtocolDiff,
                                      diff_protocols, infer_protocols)
from repro.analysis.report import render_diff_report, render_trace_tree
from repro.analysis.rprism import RPrism, RPrismResult
from repro.analysis.serialize import (entry_from_json, entry_to_json,
                                      load_trace, save_trace)

__all__ = [
    "ImpactReport", "Protocol", "ProtocolDiff", "RPrism", "RPrismResult",
    "diff_protocols", "entry_from_json", "entry_to_json", "impact_of",
    "impacted_methods", "infer_protocols", "load_trace",
    "render_diff_report", "render_trace_tree", "save_trace",
]
