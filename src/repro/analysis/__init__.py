"""The RPRISM tool layer: tracing drivers, serialisation, reporting,
and the further view-based analyses Sec. 4 envisions (protocol
inference, impact analysis)."""

from repro.analysis.impact import ImpactReport, impact_of, impacted_methods
from repro.analysis.protocols import (Protocol, ProtocolDiff,
                                      diff_protocols, infer_protocols)
from repro.analysis.report import render_diff_report, render_trace_tree
from repro.analysis.serialize import (entry_from_json, entry_to_json,
                                      load_trace, read_header, save_trace)

__all__ = [
    "ImpactReport", "Protocol", "ProtocolDiff", "RPrism", "RPrismResult",
    "diff_protocols", "entry_from_json", "entry_to_json", "impact_of",
    "impacted_methods", "infer_protocols", "load_trace",
    "read_header", "render_diff_report", "render_trace_tree", "save_trace",
]


def __getattr__(name: str):
    # The RPrism shim sits on top of repro.api, which in turn uses this
    # package's serialisation layer; load it lazily to keep the import
    # graph acyclic.
    if name in ("RPrism", "RPrismResult"):
        from repro.analysis import rprism
        return getattr(rprism, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
