"""Command-line interface over serialised traces.

RPRISM's workflow is offline: traces are captured (and segmented) to disk
while the program runs, then analysed later.  This CLI covers that side::

    python -m repro.analysis.cli info  trace.jsonl
    python -m repro.analysis.cli views trace.jsonl
    python -m repro.analysis.cli engines
    python -m repro.analysis.cli diff  old.jsonl new.jsonl \\
        [--engine anchored:views] [--anchor-stats] \\
        [--config window=8 --config relaxed=false]
    python -m repro.analysis.cli analyze --suspected-old old_bad.jsonl \\
        --suspected-new new_bad.jsonl [--expected-old ... --expected-new ...]
        [--regression-left ... --regression-right ...] [--mode intersect]
    python -m repro.analysis.cli store add|list|show|tag|rm DIR ...
    python -m repro.analysis.cli store diff DIR KEY1 [KEY2] \\
        [--against-baseline TAG] [--engine ...]
    python -m repro.analysis.cli store migrate DIR
    python -m repro.analysis.cli batch scenarios.json --store DIR \\
        [--jobs 4] [--executor processes]
    python -m repro.analysis.cli cache stats|prune|clear DIR ...
    python -m repro.analysis.cli index build|stats|compact DIR
    python -m repro.analysis.cli query DIR [--tag T] [--scenario S] \\
        [--digest-prefix HEX] [--since WHEN] [--similar KEY] [--json]
    python -m repro.analysis.cli serve DIR [--host H] [--port P] \\
        [--workers N] [--executor NAME[:N]]

``index``/``query`` read the store's persistent catalog
(:mod:`repro.index`, maintained automatically on save/tag/delete;
``index build`` backfills it for legacy stores), ``serve`` boots the
long-running JSON-over-HTTP service (:mod:`repro.service`), and
``store migrate`` converts a flat store to the sharded layout in
place.

Stored-trace differencing (``store diff``, ``batch``) memoises results
in a ``diffcache`` directory beside the store (``--no-cache`` bypasses,
``--cache DIR`` relocates); plain ``diff`` caches only when given an
explicit ``--cache DIR``.

Differencing is routed through the :mod:`repro.api.engines` registry
(``--engine`` accepts any registered name, including the
``anchored:<inner>`` meta-engines; ``--algorithm`` remains as a
deprecated alias), and the view-diff knobs of
:class:`~repro.core.view_diff.ViewDiffConfig` are exposed as repeatable
``--config KEY=VALUE`` flags (anchor selection included:
``--config anchor_min_run=4``).  ``engines`` lists every registered
engine with its capability flags; ``diff --anchor-stats`` prints the
pair's anchor segmentation alongside the report.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path

from repro.api.engines import (accepts_cache, accepts_executor,
                               accepts_key_table, available_engines,
                               get_engine, is_cacheable)
from repro.core.anchors import AnchorConfig, segment_pair
from repro.api.pipeline import StoredScenarioJob, run_pipeline
from repro.api.session import Session
from repro.api.store import INDEX_NAME, LAYOUTS, TraceStore
from repro.cache import DiffCache, cached_engine_diff
from repro.exec.executors import available_executors, get_executor
from repro.analysis.report import render_diff_report, render_trace_tree
from repro.analysis.serialize import (SUPPORTED_VERSIONS, WIRE_FORMAT_ENV,
                                      load_trace)
from repro.core.regression import (MODE_INTERSECT, MODE_SUBTRACT,
                                   analyze_regression)
from repro.core.view_diff import ViewDiffConfig
from repro.core.views import ViewType
from repro.core.web import ViewWeb

#: ``--config`` keys -> ViewDiffConfig fields (computed, so new knobs
#: are exposed without touching the CLI).
_CONFIG_FIELDS = {f.name: f for f in dataclasses.fields(ViewDiffConfig)}


def _coerce_config_value(key: str, raw: str):
    if key == "kernel":
        if raw.lower() in ("none", "null", "auto"):
            return None
        from repro.core.kernels import get_backend

        try:
            get_backend(raw)
        except ValueError as exc:
            raise SystemExit(str(exc))
        return raw
    if key == "anchor_method_hints":
        return tuple(sorted({part.strip() for part in raw.split(",")
                             if part.strip()}))
    if key == "view_types":
        types = []
        for part in raw.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                types.append(ViewType[part.upper()])
            except KeyError:
                names = ", ".join(t.name.lower() for t in ViewType)
                raise SystemExit(f"unknown view type {part!r} "
                                 f"(expected one of: {names})")
        return tuple(types)
    if raw.lower() in ("none", "null"):
        return None
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(f"--config {key} expects an integer, boolean or "
                         f"'none', got {raw!r}")


def parse_config_flags(pairs: list[str] | None) -> ViewDiffConfig | None:
    """``KEY=VALUE`` flags -> a ViewDiffConfig (None when no flags)."""
    if not pairs:
        return None
    knobs = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        key = key.strip().replace("-", "_")
        if not sep:
            raise SystemExit(f"--config expects KEY=VALUE, got {pair!r}")
        if key not in _CONFIG_FIELDS:
            known = ", ".join(sorted(_CONFIG_FIELDS))
            raise SystemExit(f"unknown view-diff knob {key!r} "
                             f"(known: {known})")
        knobs[key] = _coerce_config_value(key, raw.strip())
    return dataclasses.replace(ViewDiffConfig(), **knobs)


def _engine_name(args) -> str:
    """``--engine`` wins; ``--algorithm`` is the deprecated alias."""
    return args.engine or getattr(args, "algorithm", None) or "views"


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", choices=available_engines(),
                        help="differencing engine (registry name)")
    parser.add_argument("--algorithm", choices=available_engines(),
                        help=argparse.SUPPRESS)  # deprecated alias
    parser.add_argument("--config", action="append", metavar="KEY=VALUE",
                        help="view-diff knob, e.g. --config window=8 "
                             "--config relaxed=false (repeatable)")


def _add_format_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", type=int, dest="format",
                        choices=SUPPORTED_VERSIONS, default=None,
                        metavar="N",
                        help="wire format version for traces this "
                             "command writes or ships (default: "
                             f"${WIRE_FORMAT_ENV} or binary v3)")


def _apply_format(args) -> None:
    """Publish ``--format`` as :data:`WIRE_FORMAT_ENV` so every write
    path — this process *and* spawned workers, which inherit the
    environment — uses the requested version."""
    version = getattr(args, "format", None)
    if version is not None:
        os.environ[WIRE_FORMAT_ENV] = str(version)


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="diff cache directory (default: the "
                             "'diffcache' directory beside the trace "
                             "store, when the command has one)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the diff cache entirely")


def _resolve_cache(args, store_path: str | None = None) -> DiffCache | None:
    """The cache a command should use: ``--no-cache`` wins, then an
    explicit ``--cache DIR``, then the store's sidecar directory."""
    if args.no_cache:
        return None
    if args.cache:
        return DiffCache(args.cache)
    if store_path is not None:
        return DiffCache(Path(store_path) / "diffcache")
    return None


def _diff(left_path: str, right_path: str, engine: str,
          config: ViewDiffConfig | None,
          cache: DiffCache | None = None):
    left = load_trace(left_path)
    right = load_trace(right_path)
    return cached_engine_diff(cache, get_engine(engine), left, right,
                              config=config)


def cmd_info(args) -> int:
    trace = load_trace(args.trace)
    print(f"trace {trace.name or args.trace}: {len(trace)} entries, "
          f"{len(trace.thread_ids())} thread(s)")
    for kind, count in sorted(trace.event_kinds().items()):
        print(f"  {kind:8} {count}")
    if args.tree:
        print(render_trace_tree(trace, limit=args.limit))
    return 0


def cmd_views(args) -> int:
    trace = load_trace(args.trace)
    web = ViewWeb(trace)
    counts = web.counts()
    breakdown = ", ".join(
        f"{count} {kind.replace('_', '-')}"
        for kind, count in counts.items() if kind != "total")
    print(f"{counts['total']} views: {breakdown}")
    for view in sorted(web.all_views(),
                       key=lambda v: -len(v.indices))[:args.limit]:
        print(f"  {view.name.vtype.value:3} {str(view.name.key):40} "
              f"{len(view)} entries")
    return 0


def cmd_engines(args) -> int:
    """List registered diff engines with their capability flags and
    kernel backends (previously only discoverable from Python)."""
    from repro.core.kernels import available_backends, default_backend_name

    names = available_engines()
    width = max(len(name) for name in names)
    backends = available_backends()
    default = default_backend_name()
    print(f"{len(names)} registered engine(s):")
    for name in names:
        engine = get_engine(name)
        flags = ", ".join(flag for flag, on in (
            ("cacheable", is_cacheable(engine)),
            ("accepts_executor", accepts_executor(engine)),
            ("accepts_key_table", accepts_key_table(engine)),
            ("accepts_cache", accepts_cache(engine)),
        ) if on) or "-"
        print(f"  {name:{width}}  {flags}")
    marks = ", ".join(f"{name}*" if name == default else name
                      for name in backends)
    print(f"kernel backends (built-in engines; * = active default, "
          f"select with --config kernel=NAME): {marks}")
    return 0


def cmd_diff(args) -> int:
    _apply_format(args)
    left = load_trace(args.left)
    right = load_trace(args.right)
    config = parse_config_flags(args.config)
    result = cached_engine_diff(_resolve_cache(args),
                                get_engine(_engine_name(args)),
                                left, right, config=config)
    if args.anchor_stats:
        anchor_config = AnchorConfig.from_view_config(
            config if config is not None else ViewDiffConfig())
        interned = config.interned if config is not None else True
        print(segment_pair(left, right, config=anchor_config,
                           interned=interned).render())
    print(render_diff_report(result, max_sequences=args.limit))
    return 0 if result.num_diffs() == 0 else 1


def cmd_analyze(args) -> int:
    engine = _engine_name(args)
    config = parse_config_flags(args.config)
    suspected = _diff(args.suspected_old, args.suspected_new, engine,
                      config)
    expected = None
    if args.expected_old and args.expected_new:
        expected = _diff(args.expected_old, args.expected_new, engine,
                         config)
    regression = None
    if args.regression_left and args.regression_right:
        regression = _diff(args.regression_left, args.regression_right,
                           engine, config)
    report = analyze_regression(suspected, expected=expected,
                                regression=regression, mode=args.mode)
    print(report.render(limit=args.limit))
    return 0


# -- store ------------------------------------------------------------------


def cmd_store_add(args) -> int:
    _apply_format(args)
    store = TraceStore(args.store)
    record = store.ingest_file(args.trace, key=args.key,
                               tags=tuple(args.tag or ()),
                               dedup=args.dedup,
                               scenario=args.scenario)
    if args.dedup and args.key and record.key != args.key:
        print(f"dedup: identical content already stored as "
              f"{record.key!r}")
    print(record.brief())
    return 0


def cmd_store_list(args) -> int:
    store = _open_store(args.store)
    records = store.records(tag=args.tag)
    for record in records:
        print(record.brief())
    print(f"{len(records)} trace(s) in {store.root}")
    return 0


def _missing_key(store: TraceStore, key: str) -> int:
    print(f"no trace {key!r} in {store.root}", file=sys.stderr)
    return 1


def _open_store(path: str) -> TraceStore:
    try:
        return TraceStore(path, create=False)
    except FileNotFoundError:
        raise SystemExit(f"no trace store at {path}")


def cmd_store_show(args) -> int:
    store = _open_store(args.store)
    if args.key not in store:
        return _missing_key(store, args.key)
    record = store.get(args.key)
    print(record.brief())
    if args.tree:
        print(render_trace_tree(store.load(args.key), limit=args.limit))
    return 0


def cmd_store_tag(args) -> int:
    store = _open_store(args.store)
    if args.key not in store:
        return _missing_key(store, args.key)
    if args.remove:
        record = store.untag(args.key, *args.tags)
    else:
        record = store.tag(args.key, *args.tags)
    print(record.brief())
    return 0


def cmd_store_diff(args) -> int:
    """Diff two stored traces directly — no re-capture.

    v2 store files carry their interned ``=e`` key tables, so the
    loaded traces diff without recomputing a single key; the stored
    content digests give a sound identical-content hint up front (the
    cheap shape fingerprint is provenance-only — it collides across
    traces with equal shape but different content, so it is never
    compared here).
    """
    store = _open_store(args.store)
    right = args.right
    if right is None:
        if not args.against_baseline:
            raise SystemExit("store diff needs a second key or "
                             "--against-baseline TAG")
        record = store.index.newest_with_tag(args.against_baseline,
                                             exclude_key=args.left)
        if record is None:
            print(f"no indexed trace carries tag "
                  f"{args.against_baseline!r} in {store.root} "
                  f"(run `repro index build` on legacy stores)",
                  file=sys.stderr)
            return 2
        right = record.key
        print(f"baseline {args.against_baseline!r} -> {right}")
    elif args.against_baseline:
        raise SystemExit("pass a second key or --against-baseline, "
                         "not both")
    for key in (args.left, right):
        if key not in store:
            # Exit 2, not 1: callers (the CI smoke) read 1 as
            # "differences found" — a missing key must stay distinct.
            _missing_key(store, key)
            return 2
    left_record = store.get(args.left)
    right_record = store.get(right)
    digest_l = left_record.metadata.get("digest")
    digest_r = right_record.metadata.get("digest")
    if digest_l and digest_r:
        note = "identical" if digest_l == digest_r else "differ"
        print(f"content digests: {digest_l} vs {digest_r} ({note})")
    session = Session(store=store, engine=_engine_name(args),
                      config=parse_config_flags(args.config),
                      cache=_resolve_cache(args, args.store))
    result = session.diff(args.left, right)
    print(render_diff_report(result, max_sequences=args.limit))
    return 0 if result.num_diffs() == 0 else 1


def cmd_store_rm(args) -> int:
    store = _open_store(args.store)
    if args.key not in store:
        return _missing_key(store, args.key)
    store.delete(args.key)
    print(f"removed {args.key}")
    return 0


def cmd_store_migrate(args) -> int:
    store = _open_store(args.store)
    if args.to_format is not None:
        summary = store.migrate_format(args.to_format)
        print(f"format v{summary['version']}: "
              f"{summary['migrated']} rewritten, "
              f"{summary['skipped']} already current, "
              f"{summary['failed']} failed in {store.root}")
        return 0 if summary["failed"] == 0 else 1
    if store.sharded:
        moved = store.migrate_to_sharded()  # idempotent remnant sweep
        print(f"{store.root} already sharded "
              f"({moved} remnant(s) adopted)")
        return 0
    moved = store.migrate_to_sharded()
    print(f"migrated {store.root} to the sharded layout "
          f"({moved} trace(s) moved)")
    return 0


def cmd_store_stats(args) -> int:
    stats = _open_store(args.store).format_stats()
    for version, bucket in stats["formats"].items():
        label = f"v{version}" if version != "0" else "unstamped"
        print(f"  {label:10} {bucket['traces']:>6} trace(s)  "
              f"{bucket['bytes']:>12} byte(s)")
    print(f"{stats['traces']} trace(s), {stats['bytes']} byte(s) "
          f"on disk in {args.store}")
    return 0


# -- cache ------------------------------------------------------------------


def _cache_dir(path: str) -> Path:
    """A cache directory argument: a trace store directory means its
    ``diffcache`` sidecar, anything else is the cache itself."""
    directory = Path(path)
    if (directory / INDEX_NAME).exists():
        return directory / "diffcache"
    return directory


def cmd_cache_stats(args) -> int:
    print(DiffCache(_cache_dir(args.path)).stats().render())
    return 0


def cmd_cache_prune(args) -> int:
    if args.keep is None and args.max_age is None:
        raise SystemExit("cache prune needs --keep and/or --max-age")
    cache = DiffCache(_cache_dir(args.path))
    removed = cache.prune(max_entries=args.keep,
                          max_age_seconds=args.max_age)
    print(f"pruned {removed} entr(ies) from {cache.path}")
    return 0


def cmd_cache_clear(args) -> int:
    cache = DiffCache(_cache_dir(args.path))
    removed = cache.clear()
    print(f"cleared {removed} entr(ies) from {cache.path}")
    return 0


# -- index / query ----------------------------------------------------------


def cmd_index_build(args) -> int:
    store = _open_store(args.store)
    count = store.index.rebuild(store)
    print(f"indexed {count} trace(s) under {store.index.root}")
    return 0


def cmd_index_stats(args) -> int:
    print(_open_store(args.store).index.stats().render())
    return 0


def cmd_index_compact(args) -> int:
    store = _open_store(args.store)
    count = store.index.compact()
    print(f"compacted catalog: {count} live record(s)")
    return 0


def cmd_query(args) -> int:
    """Catalog lookups — answered from ``index.d`` alone, no trace
    file is opened no matter how many traces the store holds."""
    store = _open_store(args.store)
    index = store.index
    if args.diffs:
        rows = index.diff_stats(digest_prefix=args.digest_prefix,
                                engine=args.engine, since=args.since,
                                limit=args.limit)
        if args.json:
            print(json.dumps([r.to_json() for r in rows], indent=1))
        else:
            for row in rows:
                cached = " (cached)" if row.cached else ""
                print(f"{row.left[:12]} vs {row.right[:12]} "
                      f"[{row.engine}] {row.num_diffs} diff(s), "
                      f"{row.compares} compare(s), "
                      f"{row.seconds:.3f}s{cached}")
            print(f"{len(rows)} diff stat row(s)")
        return 0
    if args.similar:
        try:
            scored = index.similar(args.similar,
                                   limit=args.limit or 10)
        except KeyError:
            print(f"no indexed trace {args.similar!r} "
                  f"(run `repro index build`?)", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps([{"score": score, **record.to_json()}
                              for score, record in scored], indent=1))
        else:
            for score, record in scored:
                print(f"{score:6.3f}  {record.brief()}")
            print(f"{len(scored)} similar trace(s)")
        return 0
    try:
        records = index.query(tags=tuple(args.tag or ()) or None,
                              scenario=args.scenario,
                              digest_prefix=args.digest_prefix,
                              key_prefix=args.key_prefix,
                              since=args.since, limit=args.limit)
    except ValueError as error:
        raise SystemExit(str(error))
    if args.json:
        print(json.dumps([r.to_json() for r in records], indent=1))
    else:
        for record in records:
            print(record.brief())
        print(f"{len(records)} matching trace(s)")
    return 0


# -- serve ------------------------------------------------------------------


def cmd_serve(args) -> int:
    from repro.service import ReproService
    service = ReproService(TraceStore(args.store, layout=args.layout),
                           host=args.host,
                           port=args.port, workers=args.workers,
                           executor=args.executor,
                           engine=_engine_name(args),
                           cache=not args.no_cache)
    try:
        service.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


# -- batch ------------------------------------------------------------------


def _jobs_from_spec(spec: dict) -> list[StoredScenarioJob]:
    scenarios = spec.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise SystemExit("batch spec must have a non-empty "
                         "'scenarios' list")
    jobs = []
    for position, entry in enumerate(scenarios):
        def _pair(key, required=False):
            value = entry.get(key)
            if value is None and not required:
                return None
            if (not isinstance(value, (list, tuple)) or len(value) != 2
                    or not all(isinstance(v, str) for v in value)):
                raise SystemExit(f"scenario #{position}: {key!r} must "
                                 f"be a list of two trace keys")
            return (value[0], value[1])

        jobs.append(StoredScenarioJob(
            name=entry.get("name", f"scenario-{position}"),
            suspected=_pair("suspected", required=True),
            expected=_pair("expected"),
            regression=_pair("regression"),
            engine=entry.get("engine"),
            mode=entry.get("mode"),
        ))
    return jobs


def cmd_batch(args) -> int:
    _apply_format(args)  # before get_executor: workers inherit the env
    try:
        with open(args.spec, encoding="utf-8") as handle:
            spec = json.load(handle)
    except FileNotFoundError:
        raise SystemExit(f"no batch spec at {args.spec}")
    except json.JSONDecodeError as error:
        raise SystemExit(f"batch spec {args.spec} is not valid JSON: "
                         f"{error}")
    jobs = _jobs_from_spec(spec)
    try:
        executor = get_executor(args.executor)
    except (KeyError, ValueError) as error:
        # args[0], not str(): str(KeyError) wraps the message in quotes.
        raise SystemExit(error.args[0])
    cache = _resolve_cache(args, args.store)
    try:
        session = Session(store=_open_store(args.store),
                          engine=_engine_name(args),
                          config=parse_config_flags(args.config),
                          executor=executor,
                          cache=cache)
        result = run_pipeline(jobs, session=session, max_workers=args.jobs)
    finally:
        executor.close()
    print(result.render())
    if cache is not None:
        stats = cache.stats()
        print(f"cache: {stats.hits} hit(s), {stats.misses} miss(es), "
              f"{stats.stores} store(s) at {stats.path}")
    return 0 if not result.failed() else 1


# -- parser -----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rprism",
        description="semantics-aware trace analysis (offline side)")
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="summarise a trace file")
    info.add_argument("trace")
    info.add_argument("--tree", action="store_true",
                      help="render the call tree")
    info.add_argument("--limit", type=int, default=40)
    info.set_defaults(func=cmd_info)

    views = commands.add_parser("views", help="list a trace's views")
    views.add_argument("trace")
    views.add_argument("--limit", type=int, default=20)
    views.set_defaults(func=cmd_views)

    engines = commands.add_parser(
        "engines", help="list registered diff engines and capabilities")
    engines.set_defaults(func=cmd_engines)

    diff = commands.add_parser("diff", help="semantic diff of two traces")
    diff.add_argument("left")
    diff.add_argument("right")
    _add_engine_options(diff)
    _add_cache_options(diff)
    _add_format_option(diff)
    diff.add_argument("--anchor-stats", action="store_true",
                      help="print the pair's =e anchor segmentation "
                           "(runs, gaps, candidate counts)")
    diff.add_argument("--limit", type=int, default=10)
    diff.set_defaults(func=cmd_diff)

    analyze = commands.add_parser(
        "analyze", help="regression-cause analysis over trace pairs")
    analyze.add_argument("--suspected-old", required=True)
    analyze.add_argument("--suspected-new", required=True)
    analyze.add_argument("--expected-old")
    analyze.add_argument("--expected-new")
    analyze.add_argument("--regression-left")
    analyze.add_argument("--regression-right")
    analyze.add_argument("--mode", default=MODE_INTERSECT,
                         choices=(MODE_INTERSECT, MODE_SUBTRACT))
    _add_engine_options(analyze)
    analyze.add_argument("--limit", type=int, default=10)
    analyze.set_defaults(func=cmd_analyze)

    store = commands.add_parser(
        "store", help="manage a persistent trace store directory")
    store_cmds = store.add_subparsers(dest="store_command", required=True)

    store_add = store_cmds.add_parser(
        "add", help="ingest a trace file into the store")
    store_add.add_argument("store")
    store_add.add_argument("trace")
    store_add.add_argument("--key", help="store key (default: trace name)")
    store_add.add_argument("--tag", action="append",
                           help="tag to attach (repeatable)")
    store_add.add_argument("--dedup", action="store_true",
                           help="skip the write when a byte-identical "
                                "trace is already stored (catalog "
                                "lookup by content digest)")
    store_add.add_argument("--scenario",
                           help="scenario metadata recorded in the "
                                "catalog (repro query --scenario)")
    _add_format_option(store_add)
    store_add.set_defaults(func=cmd_store_add)

    store_list = store_cmds.add_parser("list", help="list stored traces")
    store_list.add_argument("store")
    store_list.add_argument("--tag", help="only traces carrying this tag")
    store_list.set_defaults(func=cmd_store_list)

    store_show = store_cmds.add_parser("show", help="show one stored trace")
    store_show.add_argument("store")
    store_show.add_argument("key")
    store_show.add_argument("--tree", action="store_true")
    store_show.add_argument("--limit", type=int, default=40)
    store_show.set_defaults(func=cmd_store_show)

    store_tag = store_cmds.add_parser("tag", help="tag / untag a trace")
    store_tag.add_argument("store")
    store_tag.add_argument("key")
    store_tag.add_argument("tags", nargs="+")
    store_tag.add_argument("--remove", action="store_true",
                           help="remove the tags instead of adding")
    store_tag.set_defaults(func=cmd_store_tag)

    store_rm = store_cmds.add_parser("rm", help="delete a stored trace")
    store_rm.add_argument("store")
    store_rm.add_argument("key")
    store_rm.set_defaults(func=cmd_store_rm)

    store_diff = store_cmds.add_parser(
        "diff", help="semantic diff of two stored traces (no re-capture)")
    store_diff.add_argument("store")
    store_diff.add_argument("left", help="store key of the left trace")
    store_diff.add_argument("right", nargs="?", default=None,
                            help="store key of the right trace "
                                 "(omit with --against-baseline)")
    store_diff.add_argument("--against-baseline", metavar="TAG",
                            help="diff LEFT against the newest trace "
                                 "carrying TAG (catalog resolution)")
    _add_engine_options(store_diff)
    _add_cache_options(store_diff)
    store_diff.add_argument("--limit", type=int, default=10)
    store_diff.set_defaults(func=cmd_store_diff)

    store_migrate = store_cmds.add_parser(
        "migrate", help="convert a flat store to the sharded layout "
                        "in place (shards.d/<hh>/, per-shard indexes), "
                        "or rewrite trace files with --to-format")
    store_migrate.add_argument("store")
    store_migrate.add_argument("--to-format", type=int, dest="to_format",
                               choices=SUPPORTED_VERSIONS, default=None,
                               metavar="N",
                               help="rewrite every stored trace in wire "
                                    "format N (keys, tags and digests "
                                    "are preserved) instead of changing "
                                    "the directory layout")
    store_migrate.set_defaults(func=cmd_store_migrate)

    store_stats = store_cmds.add_parser(
        "stats", help="per-format trace counts and on-disk bytes")
    store_stats.add_argument("store")
    store_stats.set_defaults(func=cmd_store_stats)

    cache = commands.add_parser(
        "cache", help="manage a persistent diff cache directory")
    cache_cmds = cache.add_subparsers(dest="cache_command", required=True)

    cache_stats = cache_cmds.add_parser(
        "stats", help="entry count and footprint of a cache")
    cache_stats.add_argument("path", help="cache directory (a trace "
                                          "store means its diffcache/)")
    cache_stats.set_defaults(func=cmd_cache_stats)

    cache_prune = cache_cmds.add_parser(
        "prune", help="drop old cache entries")
    cache_prune.add_argument("path", help="cache directory (a trace "
                                          "store means its diffcache/)")
    cache_prune.add_argument("--keep", type=int, default=None,
                             metavar="N",
                             help="keep at most N newest entries")
    cache_prune.add_argument("--max-age", type=float, default=None,
                             metavar="SECONDS",
                             help="drop entries older than SECONDS")
    cache_prune.set_defaults(func=cmd_cache_prune)

    cache_clear = cache_cmds.add_parser(
        "clear", help="remove every cache entry")
    cache_clear.add_argument("path", help="cache directory (a trace "
                                          "store means its diffcache/)")
    cache_clear.set_defaults(func=cmd_cache_clear)

    index = commands.add_parser(
        "index", help="manage a store's persistent trace catalog")
    index_cmds = index.add_subparsers(dest="index_command", required=True)

    index_build = index_cmds.add_parser(
        "build", help="(re)build the catalog from the store's traces "
                      "(backfill for legacy stores)")
    index_build.add_argument("store")
    index_build.set_defaults(func=cmd_index_build)

    index_stats = index_cmds.add_parser(
        "stats", help="record counts and footprint of the catalog")
    index_stats.add_argument("store")
    index_stats.set_defaults(func=cmd_index_stats)

    index_compact = index_cmds.add_parser(
        "compact", help="fold the catalog's op logs down to one line "
                        "per live record")
    index_compact.add_argument("store")
    index_compact.set_defaults(func=cmd_index_compact)

    query = commands.add_parser(
        "query", help="query the trace catalog (index-only, no trace "
                      "file reads)")
    query.add_argument("store")
    query.add_argument("--tag", action="append",
                       help="require this tag (repeatable: all must "
                            "be carried)")
    query.add_argument("--scenario", help="exact scenario match")
    query.add_argument("--digest-prefix", metavar="HEX",
                       help="content-digest prefix match")
    query.add_argument("--key-prefix", help="store-key prefix match")
    query.add_argument("--since", metavar="WHEN",
                       help="updated at/after WHEN (epoch seconds or "
                            "ISO-8601)")
    query.add_argument("--similar", metavar="KEY",
                       help="rank traces by similarity to KEY "
                            "(sketch overlap + digest/fingerprint)")
    query.add_argument("--diffs", action="store_true",
                       help="list per-diff stat rows instead of traces")
    query.add_argument("--engine", help="with --diffs: only this engine")
    query.add_argument("--limit", type=int, default=None)
    query.add_argument("--json", action="store_true",
                       help="machine-readable output")
    query.set_defaults(func=cmd_query)

    serve = commands.add_parser(
        "serve", help="run the long-lived trace-diff service over a "
                      "store (JSON over HTTP)")
    serve.add_argument("store", help="trace store directory (created "
                                     "if missing)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--layout", choices=LAYOUTS, default="auto",
                       help="store layout when creating a fresh store "
                            "(existing stores are auto-detected)")
    serve.add_argument("--port", type=int, default=8321,
                       help="TCP port (0: ephemeral, printed on boot)")
    serve.add_argument("--workers", type=int, default=4,
                       help="concurrent job workers")
    serve.add_argument("--executor", default=None, metavar="NAME[:N]",
                       help="execution backend for job captures/diffs "
                            f"(one of: {', '.join(available_executors())};"
                            " default: serial)")
    _add_engine_options(serve)
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without a diff cache")
    serve.set_defaults(func=cmd_serve)

    batch = commands.add_parser(
        "batch",
        help="run many stored regression scenarios through the pipeline")
    batch.add_argument("spec", help="JSON file with a 'scenarios' list; "
                                    "each entry names suspected/expected/"
                                    "regression store keys")
    batch.add_argument("--store", required=True,
                       help="trace store directory the keys refer to")
    batch.add_argument("--jobs", type=int, default=None,
                       help="worker threads (default: one per scenario, "
                            "capped)")
    batch.add_argument("--executor", default=None, metavar="NAME[:N]",
                       help="execution backend for each job's captures "
                            "and parallelisable diffs, with optional "
                            "worker count (one of: "
                            f"{', '.join(available_executors())}; "
                            "processes breaks the capture lock; "
                            "default: serial)")
    _add_engine_options(batch)
    _add_cache_options(batch)
    _add_format_option(batch)
    batch.set_defaults(func=cmd_batch)

    from repro.static.cli import register as register_static
    register_static(commands)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
