"""Command-line interface over serialised traces.

RPRISM's workflow is offline: traces are captured (and segmented) to disk
while the program runs, then analysed later.  This CLI covers that side::

    python -m repro.analysis.cli info  trace.jsonl
    python -m repro.analysis.cli views trace.jsonl
    python -m repro.analysis.cli diff  old.jsonl new.jsonl [--algorithm views]
    python -m repro.analysis.cli analyze --suspected-old old_bad.jsonl \\
        --suspected-new new_bad.jsonl [--expected-old ... --expected-new ...]
        [--regression-left ... --regression-right ...] [--mode intersect]
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import render_diff_report, render_trace_tree
from repro.analysis.serialize import load_trace
from repro.core.lcs_diff import lcs_diff
from repro.core.regression import (MODE_INTERSECT, MODE_SUBTRACT,
                                   analyze_regression)
from repro.core.view_diff import view_diff
from repro.core.web import ViewWeb


def _diff(left_path: str, right_path: str, algorithm: str):
    left = load_trace(left_path)
    right = load_trace(right_path)
    if algorithm == "views":
        return view_diff(left, right)
    return lcs_diff(left, right, algorithm=algorithm)


def cmd_info(args) -> int:
    trace = load_trace(args.trace)
    print(f"trace {trace.name or args.trace}: {len(trace)} entries, "
          f"{len(trace.thread_ids())} thread(s)")
    for kind, count in sorted(trace.event_kinds().items()):
        print(f"  {kind:8} {count}")
    if args.tree:
        print(render_trace_tree(trace, limit=args.limit))
    return 0


def cmd_views(args) -> int:
    trace = load_trace(args.trace)
    web = ViewWeb(trace)
    counts = web.counts()
    print(f"{counts['total']} views: {counts['thread']} thread, "
          f"{counts['method']} method, {counts['target_object']} "
          f"target-object, {counts['active_object']} active-object")
    for view in sorted(web.all_views(),
                       key=lambda v: -len(v.indices))[:args.limit]:
        print(f"  {view.name.vtype.value:3} {str(view.name.key):40} "
              f"{len(view)} entries")
    return 0


def cmd_diff(args) -> int:
    result = _diff(args.left, args.right, args.algorithm)
    print(render_diff_report(result, max_sequences=args.limit))
    return 0 if result.num_diffs() == 0 else 1


def cmd_analyze(args) -> int:
    suspected = _diff(args.suspected_old, args.suspected_new,
                      args.algorithm)
    expected = None
    if args.expected_old and args.expected_new:
        expected = _diff(args.expected_old, args.expected_new,
                         args.algorithm)
    regression = None
    if args.regression_left and args.regression_right:
        regression = _diff(args.regression_left, args.regression_right,
                           args.algorithm)
    report = analyze_regression(suspected, expected=expected,
                                regression=regression, mode=args.mode)
    print(report.render(limit=args.limit))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rprism",
        description="semantics-aware trace analysis (offline side)")
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="summarise a trace file")
    info.add_argument("trace")
    info.add_argument("--tree", action="store_true",
                      help="render the call tree")
    info.add_argument("--limit", type=int, default=40)
    info.set_defaults(func=cmd_info)

    views = commands.add_parser("views", help="list a trace's views")
    views.add_argument("trace")
    views.add_argument("--limit", type=int, default=20)
    views.set_defaults(func=cmd_views)

    diff = commands.add_parser("diff", help="semantic diff of two traces")
    diff.add_argument("left")
    diff.add_argument("right")
    diff.add_argument("--algorithm", default="views",
                      choices=("views", "optimized", "dp", "hirschberg",
                               "fast"))
    diff.add_argument("--limit", type=int, default=10)
    diff.set_defaults(func=cmd_diff)

    analyze = commands.add_parser(
        "analyze", help="regression-cause analysis over trace pairs")
    analyze.add_argument("--suspected-old", required=True)
    analyze.add_argument("--suspected-new", required=True)
    analyze.add_argument("--expected-old")
    analyze.add_argument("--expected-new")
    analyze.add_argument("--regression-left")
    analyze.add_argument("--regression-right")
    analyze.add_argument("--mode", default=MODE_INTERSECT,
                         choices=(MODE_INTERSECT, MODE_SUBTRACT))
    analyze.add_argument("--algorithm", default="views",
                         choices=("views", "optimized", "dp",
                                  "hirschberg", "fast"))
    analyze.add_argument("--limit", type=int, default=10)
    analyze.set_defaults(func=cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
