"""RPRISM: the legacy one-call tool facade (now a shim).

The tool surface moved to :mod:`repro.api`: configuration, capture,
differencing, storage and batch execution live on
:class:`repro.api.session.Session` and friends.  :class:`RPrism` remains
as a thin backwards-compatible wrapper so existing drivers keep
working::

    tool = RPrism()
    outcome = tool.analyze_regression_scenario(
        old_version=run_old, new_version=run_new,
        regressing_input=failing_input, correct_input=passing_input)
    print(outcome.render())

is equivalent to::

    outcome = Session().run_scenario(
        run_old, run_new, regressing_input=failing_input,
        correct_input=passing_input)

``RPrismResult`` is an alias of :class:`repro.api.session.SessionResult`
(same fields: ``suspected`` / ``expected`` / ``regression`` /
``report`` / ``traces`` / ``seconds``).
"""

from __future__ import annotations

from typing import Callable

from repro.api.session import Session, SessionResult
from repro.capture.filters import TraceFilter
from repro.capture.tracer import CaptureResult
from repro.core.diffs import DiffResult
from repro.core.lcs import MemoryBudget, OpCounter
from repro.core.regression import MODE_INTERSECT, RegressionReport
from repro.core.traces import Trace
from repro.core.view_diff import ViewDiffConfig
from repro.core.web import ViewWeb

#: Backwards-compatible name for the structured scenario outcome.
RPrismResult = SessionResult


class RPrism:
    """Deprecated facade: delegates every operation to a Session."""

    def __init__(self, config: ViewDiffConfig | None = None,
                 filter: TraceFilter | None = None,
                 record_fields: bool = True):
        self.session = Session(config=config, filter=filter,
                               record_fields=record_fields)

    # The session's configuration stays reachable under the old names.

    @property
    def config(self) -> ViewDiffConfig:
        return self.session.config

    @config.setter
    def config(self, value: ViewDiffConfig) -> None:
        self.session.config = value

    @property
    def filter(self) -> TraceFilter | None:
        return self.session.filter

    @filter.setter
    def filter(self, value: TraceFilter | None) -> None:
        self.session.filter = value

    @property
    def record_fields(self) -> bool:
        return self.session.record_fields

    @record_fields.setter
    def record_fields(self, value: bool) -> None:
        self.session.record_fields = value

    # -- tracing ---------------------------------------------------------

    def capture(self, func: Callable, *args, name: str = "",
                **kwargs) -> CaptureResult:
        """Trace one run, keeping the result/error alongside the trace."""
        return self.session.capture(func, *args, name=name, **kwargs)

    def trace_call(self, func: Callable, *args, name: str = "",
                   **kwargs) -> Trace:
        """Trace one run, returning just the trace."""
        return self.session.trace_call(func, *args, name=name, **kwargs)

    # -- differencing ------------------------------------------------------

    def diff(self, left: Trace, right: Trace,
             algorithm: str = "views",
             counter: OpCounter | None = None,
             budget: MemoryBudget | None = None) -> DiffResult:
        """Difference two traces (``algorithm`` is an engine name)."""
        return self.session.diff(left, right, engine=algorithm,
                                 counter=counter, budget=budget)

    def web(self, trace: Trace) -> ViewWeb:
        """Build the view web of a trace (for navigation / Table 2)."""
        return self.session.web(trace)

    # -- the Sec. 4 pipeline --------------------------------------------------

    def analyze(self, suspected: DiffResult,
                expected: DiffResult | None = None,
                regression: DiffResult | None = None,
                mode: str = MODE_INTERSECT) -> RegressionReport:
        return self.session.analyze(suspected, expected=expected,
                                    regression=regression, mode=mode)

    def analyze_regression_scenario(
            self, old_version: Callable, new_version: Callable,
            regressing_input, correct_input=None,
            mode: str = MODE_INTERSECT,
            algorithm: str = "views") -> RPrismResult:
        """Run the full Sec. 4 recipe (see ``Session.run_scenario``)."""
        return self.session.run_scenario(
            old_version, new_version, regressing_input, correct_input,
            engine=algorithm, mode=mode)
