"""RPRISM: the fully automated tool facade.

Ties the layers together exactly the way the paper's evaluation drives
them: trace a correct and a regressing program version (Sec. 5's tracing
layer), difference the traces with the views-based semantics (Sec. 3.3),
and run the regression-cause analysis (Sec. 4) over the suspected /
expected / regression difference sets.

The one-call entry point is :meth:`RPrism.analyze_regression_scenario`::

    tool = RPrism()
    outcome = tool.analyze_regression_scenario(
        old_version=run_old, new_version=run_new,
        regressing_input=failing_input, correct_input=passing_input)
    print(outcome.render())
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.capture.filters import TraceFilter
from repro.capture.tracer import CaptureResult, trace_call
from repro.core.diffs import DiffResult
from repro.core.lcs import MemoryBudget, OpCounter
from repro.core.lcs_diff import lcs_diff
from repro.core.regression import (MODE_INTERSECT, RegressionReport,
                                   analyze_regression)
from repro.core.traces import Trace
from repro.core.view_diff import ViewDiffConfig, view_diff
from repro.core.web import ViewWeb


@dataclass(slots=True)
class RPrismResult:
    """Everything the tool produced for one regression scenario."""

    suspected: DiffResult
    expected: DiffResult | None
    regression: DiffResult | None
    report: RegressionReport
    traces: dict[str, Trace] = field(default_factory=dict)
    seconds: float = 0.0

    def render(self, max_sequences: int = 10) -> str:
        lines = [self.report.render(limit=max_sequences)]
        lines.append(
            f"suspected diff: {self.suspected.num_diffs()} differences in "
            f"{len(self.suspected.sequences)} sequences "
            f"({self.suspected.compares()} compares, "
            f"{self.suspected.seconds:.3f}s)")
        if self.expected is not None:
            lines.append(
                f"expected diff:  {self.expected.num_diffs()} differences "
                f"in {len(self.expected.sequences)} sequences")
        if self.regression is not None:
            lines.append(
                f"regression diff: {self.regression.num_diffs()} "
                f"differences in {len(self.regression.sequences)} sequences")
        return "\n".join(lines)


class RPrism:
    """The tool: tracing + views-based differencing + cause analysis."""

    def __init__(self, config: ViewDiffConfig | None = None,
                 filter: TraceFilter | None = None,
                 record_fields: bool = True):
        self.config = config if config is not None else ViewDiffConfig()
        self.filter = filter
        self.record_fields = record_fields

    # -- tracing ---------------------------------------------------------

    def capture(self, func: Callable, *args, name: str = "",
                **kwargs) -> CaptureResult:
        """Trace one run, keeping the result/error alongside the trace."""
        return trace_call(func, *args, name=name, filter=self.filter,
                          record_fields=self.record_fields, **kwargs)

    def trace_call(self, func: Callable, *args, name: str = "",
                   **kwargs) -> Trace:
        """Trace one run, returning just the trace."""
        return self.capture(func, *args, name=name, **kwargs).trace

    # -- differencing ------------------------------------------------------

    def diff(self, left: Trace, right: Trace,
             algorithm: str = "views",
             counter: OpCounter | None = None,
             budget: MemoryBudget | None = None) -> DiffResult:
        """Difference two traces (``"views"`` or an LCS baseline name)."""
        if algorithm == "views":
            return view_diff(left, right, config=self.config,
                             counter=counter)
        return lcs_diff(left, right, algorithm=algorithm, counter=counter,
                        budget=budget)

    def web(self, trace: Trace) -> ViewWeb:
        """Build the view web of a trace (for navigation / Table 2)."""
        return ViewWeb(trace)

    # -- the Sec. 4 pipeline --------------------------------------------------

    def analyze(self, suspected: DiffResult,
                expected: DiffResult | None = None,
                regression: DiffResult | None = None,
                mode: str = MODE_INTERSECT) -> RegressionReport:
        return analyze_regression(suspected, expected=expected,
                                  regression=regression, mode=mode)

    def analyze_regression_scenario(
            self, old_version: Callable, new_version: Callable,
            regressing_input, correct_input=None,
            mode: str = MODE_INTERSECT,
            algorithm: str = "views") -> RPrismResult:
        """Run the full Sec. 4 recipe.

        Traces collected (Sec. 4.2): old and new versions on the
        regressing input (suspected set A); old and new on the correct
        input (expected set B); and, on the new version, correct vs
        regressing input (regression set C).  ``correct_input=None``
        skips B and C, modelling the unattended-build configuration of
        Sec. 5.1.

        Version callables receive the input as their single argument.
        """
        started = time.perf_counter()
        traces: dict[str, Trace] = {}
        old_bad = self.capture(old_version, regressing_input,
                               name="old/regressing").trace
        new_bad = self.capture(new_version, regressing_input,
                               name="new/regressing").trace
        traces["old/regressing"] = old_bad
        traces["new/regressing"] = new_bad
        suspected = self.diff(old_bad, new_bad, algorithm=algorithm)

        expected = None
        regression = None
        if correct_input is not None:
            old_ok = self.capture(old_version, correct_input,
                                  name="old/correct").trace
            new_ok = self.capture(new_version, correct_input,
                                  name="new/correct").trace
            traces["old/correct"] = old_ok
            traces["new/correct"] = new_ok
            expected = self.diff(old_ok, new_ok, algorithm=algorithm)
            regression = self.diff(new_ok, new_bad, algorithm=algorithm)

        report = self.analyze(suspected, expected=expected,
                              regression=regression, mode=mode)
        return RPrismResult(
            suspected=suspected,
            expected=expected,
            regression=regression,
            report=report,
            traces=traces,
            seconds=time.perf_counter() - started,
        )
