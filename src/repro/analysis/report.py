"""Rendering of traces and semantic diffs in the style of Fig. 13.

The paper's figures draw traces as indented call trees (``-->`` for
calls, ``<--`` for returns, ``set``/``get`` for field events) and diffs
with per-entry markers.  These renderers produce the same shape in plain
text, with dynamic state (value representations) inlined — "allowing
these potential causes to be viewed in their full context".
"""

from __future__ import annotations

from repro.core.diffs import DiffResult
from repro.core.entries import TraceEntry
from repro.core.events import Call, FieldGet, FieldSet, Fork, Init, Return
from repro.core.traces import Trace


def _entry_line(entry: TraceEntry) -> tuple[int, str]:
    """(depth delta, text) for one entry."""
    event = entry.event
    if isinstance(event, Call):
        args = ", ".join(a.brief() for a in event.args)
        return (+1, f"--> {event.obj.brief()}.{event.method}({args})")
    if isinstance(event, Return):
        return (-1, f"<-- {event.obj.brief()}.{event.method} "
                    f"ret={event.value.brief()}")
    if isinstance(event, Init):
        args = ", ".join(a.brief() for a in event.args)
        return (0, f"new {event.obj.brief()}({args})")
    if isinstance(event, FieldSet):
        return (0, f"set {event.obj.brief()}.{event.field} = "
                   f"{event.value.brief()}")
    if isinstance(event, FieldGet):
        return (0, f"get {event.obj.brief()}.{event.field} -> "
                   f"{event.value.brief()}")
    if isinstance(event, Fork):
        return (0, f"fork thread-{event.child_tid}")
    return (0, event.brief())


def render_trace_tree(trace: Trace, tid: int | None = None,
                      limit: int | None = None,
                      mark: set[int] | None = None) -> str:
    """Render a trace (or one thread of it) as an indented call tree.

    ``mark`` is a set of eids to flag with ``*`` (e.g. differences).
    """
    lines: list[str] = []
    depth = 0
    shown = 0
    for entry in trace.entries:
        if tid is not None and entry.tid != tid:
            continue
        if limit is not None and shown >= limit:
            lines.append("    ...")
            break
        delta, text = _entry_line(entry)
        if delta < 0:
            depth = max(0, depth + delta)
        flag = "*" if mark and entry.eid in mark else " "
        lines.append(f"{flag}{'    ' * depth}{text}")
        if delta > 0:
            depth += delta
        shown += 1
    return "\n".join(lines)


def render_diff_report(result: DiffResult, context: int = 2,
                       max_sequences: int | None = None) -> str:
    """A unified-diff-style report over difference sequences.

    Each sequence is shown with ``-``/``+`` markers and a little context
    from the original traces, giving the "full semantic diff ... with
    dynamic state" the paper describes.
    """
    lines = [
        f"=== semantic diff: {result.left.name or 'old'} vs "
        f"{result.right.name or 'new'} ({result.algorithm}) ===",
        f"{result.num_diffs()} differences in {len(result.sequences)} "
        f"difference sequence(s); "
        f"{len(result.anchor_pairs)} anchor correlation(s)",
    ]
    shown = result.sequences
    if max_sequences is not None:
        shown = shown[:max_sequences]
    for number, sequence in enumerate(shown, start=1):
        lines.append(f"--- sequence {number} [{sequence.kind}] ---")
        before: list[str] = []
        if sequence.left_entries and context > 0:
            first = sequence.left_entries[0].eid
            lo = max(0, first - context)
            for entry in result.left.entries[lo:first]:
                before.append(f"  {_entry_line(entry)[1]}")
        lines.extend(before)
        for entry in sequence.left_entries:
            lines.append(f"- {_entry_line(entry)[1]}")
        for entry in sequence.right_entries:
            lines.append(f"+ {_entry_line(entry)[1]}")
        if sequence.left_entries and context > 0:
            last = sequence.left_entries[-1].eid
            hi = min(len(result.left.entries), last + 1 + context)
            for entry in result.left.entries[last + 1:hi]:
                lines.append(f"  {_entry_line(entry)[1]}")
    if max_sequences is not None and len(result.sequences) > max_sequences:
        lines.append(
            f"... ({len(result.sequences) - max_sequences} more sequences)")
    return "\n".join(lines)
