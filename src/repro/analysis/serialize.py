"""Trace serialisation to/from JSON-lines files.

RPRISM offloads trace segments to disk while the program runs and
analyses them offline; this module provides the on-disk format.  One JSON
object per line per trace entry; a header line carries the trace name and
metadata.

JSON has no tuples, so serialisations (which are nested tuples in memory,
for hashability) are converted to lists on write and recursively back to
tuples on read — round-tripping preserves ``=e`` keys exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.entries import TraceEntry
from repro.core.events import (Call, End, Event, FieldGet, FieldSet, Fork,
                               Init, Return, StackFrame)
from repro.core.traces import Trace
from repro.core.values import ValueRep

FORMAT_VERSION = 1


def _rep_to_json(rep: ValueRep | None):
    if rep is None:
        return None
    return {"c": rep.class_name, "s": _plain(rep.serialization),
            "l": rep.location, "q": rep.creation_seq}


def _plain(value):
    """Tuples -> lists (JSON-encodable), tagged so they round-trip."""
    if isinstance(value, tuple):
        return {"t": [_plain(v) for v in value]}
    return value


def _untuple(value):
    if isinstance(value, dict) and set(value) == {"t"}:
        return tuple(_untuple(v) for v in value["t"])
    return value


def _rep_from_json(data) -> ValueRep | None:
    if data is None:
        return None
    return ValueRep(class_name=data["c"], serialization=_untuple(data["s"]),
                    location=data["l"], creation_seq=data["q"])


def _frame_to_json(frame: StackFrame):
    return {"m": frame.method, "from": _rep_to_json(frame.caller),
            "to": _rep_to_json(frame.callee)}


def _frame_from_json(data) -> StackFrame:
    return StackFrame(method=data["m"], caller=_rep_from_json(data["from"]),
                      callee=_rep_from_json(data["to"]))


def _ancestry_to_json(ancestry):
    return [[_frame_to_json(f) for f in stack] for stack in ancestry]


def _ancestry_from_json(data):
    return tuple(tuple(_frame_from_json(f) for f in stack)
                 for stack in data)


def _event_to_json(event: Event) -> dict:
    if isinstance(event, FieldGet):
        return {"k": "get", "o": _rep_to_json(event.obj), "f": event.field,
                "v": _rep_to_json(event.value)}
    if isinstance(event, FieldSet):
        return {"k": "set", "o": _rep_to_json(event.obj), "f": event.field,
                "v": _rep_to_json(event.value)}
    if isinstance(event, Call):
        return {"k": "call", "o": _rep_to_json(event.obj), "m": event.method,
                "a": [_rep_to_json(a) for a in event.args]}
    if isinstance(event, Return):
        return {"k": "return", "o": _rep_to_json(event.obj),
                "m": event.method, "v": _rep_to_json(event.value)}
    if isinstance(event, Init):
        return {"k": "init", "c": event.class_name,
                "a": [_rep_to_json(a) for a in event.args],
                "o": _rep_to_json(event.obj)}
    if isinstance(event, Fork):
        return {"k": "fork", "tid": event.child_tid,
                "s": _ancestry_to_json(event.ancestry)}
    if isinstance(event, End):
        return {"k": "end", "tid": event.tid,
                "s": _ancestry_to_json(event.ancestry)}
    raise TypeError(f"unserialisable event: {event!r}")


def _event_from_json(data: dict) -> Event:
    kind = data["k"]
    if kind == "get":
        return FieldGet(obj=_rep_from_json(data["o"]), field=data["f"],
                        value=_rep_from_json(data["v"]))
    if kind == "set":
        return FieldSet(obj=_rep_from_json(data["o"]), field=data["f"],
                        value=_rep_from_json(data["v"]))
    if kind == "call":
        return Call(obj=_rep_from_json(data["o"]), method=data["m"],
                    args=tuple(_rep_from_json(a) for a in data["a"]))
    if kind == "return":
        return Return(obj=_rep_from_json(data["o"]), method=data["m"],
                      value=_rep_from_json(data["v"]))
    if kind == "init":
        return Init(class_name=data["c"],
                    args=tuple(_rep_from_json(a) for a in data["a"]),
                    obj=_rep_from_json(data["o"]))
    if kind == "fork":
        return Fork(child_tid=data["tid"],
                    ancestry=_ancestry_from_json(data["s"]))
    if kind == "end":
        return End(tid=data["tid"], ancestry=_ancestry_from_json(data["s"]))
    raise ValueError(f"unknown event kind: {kind!r}")


def entry_to_json(entry: TraceEntry) -> dict:
    """One trace entry as a JSON-encodable dict."""
    return {"eid": entry.eid, "tid": entry.tid, "m": entry.method,
            "rho": _rep_to_json(entry.active),
            "e": _event_to_json(entry.event)}


def entry_from_json(data: dict) -> TraceEntry:
    return TraceEntry(eid=data["eid"], tid=data["tid"], method=data["m"],
                      active=_rep_from_json(data["rho"]),
                      event=_event_from_json(data["e"]))


def save_trace(trace: Trace, path: str | Path,
               extra_metadata: dict | None = None) -> None:
    """Write a trace as JSON lines (header line + one line per entry).

    ``extra_metadata`` is merged over the trace's own metadata in the
    header (the :class:`repro.api.store.TraceStore` records provenance
    this way without mutating the in-memory trace).
    """
    path = Path(path)
    metadata = dict(trace.metadata)
    if extra_metadata:
        metadata.update(extra_metadata)
    with path.open("w", encoding="utf-8") as handle:
        header = {"format": FORMAT_VERSION, "name": trace.name,
                  "entries": len(trace), "metadata": metadata}
        handle.write(json.dumps(header) + "\n")
        for entry in trace.entries:
            handle.write(json.dumps(entry_to_json(entry)) + "\n")


def read_header(path: str | Path) -> dict:
    """Read just the header line of a trace file (cheap listing)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return _parse_header(handle.readline(), path)


def _parse_header(header_line: str, path: Path) -> dict:
    if not header_line:
        raise ValueError(f"empty trace file: {path}")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as error:
        raise ValueError(f"not a trace file: {path} ({error})") from None
    if not isinstance(header, dict) \
            or header.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format: {header!r}")
    return header


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = _parse_header(handle.readline(), path)
        entries = [entry_from_json(json.loads(line))
                   for line in handle if line.strip()]
    return Trace(entries, name=header.get("name", ""),
                 metadata=header.get("metadata") or {})


def iter_entries(path: str | Path) -> Iterator[TraceEntry]:
    """Stream entries from a trace file without loading it whole."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        handle.readline()  # header
        for line in handle:
            if line.strip():
                yield entry_from_json(json.loads(line))


def save_entries(entries: Iterable[TraceEntry], path: str | Path,
                 name: str = "", metadata: dict | None = None) -> int:
    """Write bare entries (used by trace segmentation); returns count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        header = {"format": FORMAT_VERSION, "name": name, "entries": -1,
                  "metadata": metadata or {}}
        handle.write(json.dumps(header) + "\n")
        for entry in entries:
            handle.write(json.dumps(entry_to_json(entry)) + "\n")
            count += 1
    return count
