"""Trace serialisation: JSON-lines (v1/v2) and binary columnar (v3).

RPRISM offloads trace segments to disk while the program runs and
analyses them offline; this module provides the on-disk and on-wire
formats.

Format **v2** is streaming, text, and key-table aware::

    {"format": 2, "name": ..., "entries": n, "keys": k, "metadata": {...}}
    {"key": <plain =e key>}          # k lines, id = line order
    {"eid": ..., ..., "kid": <id>}   # n entry rows

The key table between the header and the rows lets readers recover the
interned ``=e`` representation without recomputing a single
``entry.key()`` (:func:`load_trace` attaches it to the trace), and lets
:func:`read_key_table` stream just the table — the
:class:`~repro.api.store.TraceStore` lists and keys traces without ever
materialising full entries.  Format **v1** (header + rows, no table)
remains fully readable; :func:`save_trace` can still emit it via
``version=1``.  Unknown format versions raise a clear ``ValueError``
instead of silently mis-parsing.

Format **v3** (the default) is a length-prefixed binary framing built
for cheap decode::

    b"RPV3" | u32 header length | header JSON | sections...

The header carries a section table (name, byte length) so readers seek
past anything they do not need in O(1).  The key table ships as *one*
JSON array (a single ``json.loads`` instead of k line parses), the
``eid``/``tid``/``kid`` entry columns as packed little-endian arrays
that :func:`loads_trace` re-exposes as zero-copy ``memoryview`` casts
over the input buffer (a shared-memory segment included), and entry
rows as fixed-layout records — an event-kind byte plus four u32
operand slots per entry — indexing deduplicated string/value-rep pools;
only the rare rich payloads (Fork/End ancestry) ride a side JSON blob.
Decode is **lazy**: ``loads_trace`` returns a
:class:`~repro.core.traces.Trace` whose entries materialise on demand
(:class:`~repro.core.traces.LazyEntrySequence`), so diff paths that
only touch the interned id columns never pay :func:`_untuple` — or any
per-entry work — at all.  The header also records the trace's
:meth:`~repro.core.traces.Trace.content_digest`, computed at encode
time, so digest-keyed consumers (diff cache, wire memos, dedup) never
force materialisation either.

``version=None`` everywhere means "the wire default": format 3, unless
the ``REPRO_WIRE_FORMAT`` environment variable (or an explicit
``version=``) overrides it.

JSON has no tuples, so serialisations (which are nested tuples in memory,
for hashability) are converted to lists on write and recursively back to
tuples on read — round-tripping preserves ``=e`` keys exactly.
"""

from __future__ import annotations

import io
import json
import os
import sys
from array import array
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.entries import TraceEntry
from repro.core.events import (Call, End, Event, FieldGet, FieldSet, Fork,
                               Init, Return, StackFrame)
from repro.core.keytable import KeyTable
from repro.core.traces import LazyEntrySequence, Trace
from repro.core.values import ValueRep

#: The default wire/store format (binary columnar).
FORMAT_VERSION = 3
#: The newest *text* format (``dumps_trace`` returns a str and cannot
#: carry the binary framing).
TEXT_FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2, 3)
TEXT_VERSIONS = (1, 2)

#: Environment override for the default wire format (``1``/``2``/``3``)
#: — inherited by worker processes, so one setting governs a whole
#: executor tree.
WIRE_FORMAT_ENV = "REPRO_WIRE_FORMAT"


def wire_format(explicit: "int | None" = None) -> int:
    """The serialisation version writes should use: ``explicit`` when
    given, else :data:`WIRE_FORMAT_ENV`, else :data:`FORMAT_VERSION`.
    Unknown versions raise ``ValueError`` either way."""
    if explicit is None:
        raw = os.environ.get(WIRE_FORMAT_ENV)
        if raw is None:
            return FORMAT_VERSION
        try:
            explicit = int(raw)
        except ValueError:
            raise ValueError(
                f"invalid {WIRE_FORMAT_ENV}={raw!r} (expected one of: "
                f"{', '.join(str(v) for v in SUPPORTED_VERSIONS)})"
            ) from None
    if explicit not in SUPPORTED_VERSIONS:
        raise ValueError(f"cannot write trace format version {explicit!r} "
                         f"(supported: {SUPPORTED_VERSIONS})")
    return explicit


def _rep_to_json(rep: ValueRep | None):
    if rep is None:
        return None
    return {"c": rep.class_name, "s": _plain(rep.serialization),
            "l": rep.location, "q": rep.creation_seq}


def _plain(value):
    """Tuples -> lists (JSON-encodable), tagged so they round-trip."""
    if isinstance(value, tuple):
        return {"t": [_plain(v) for v in value]}
    return value


def _untuple(value):
    if isinstance(value, dict) and set(value) == {"t"}:
        return tuple(_untuple(v) for v in value["t"])
    return value


def _rep_from_json(data) -> ValueRep | None:
    if data is None:
        return None
    return ValueRep(class_name=data["c"], serialization=_untuple(data["s"]),
                    location=data["l"], creation_seq=data["q"])


def _frame_to_json(frame: StackFrame):
    return {"m": frame.method, "from": _rep_to_json(frame.caller),
            "to": _rep_to_json(frame.callee)}


def _frame_from_json(data) -> StackFrame:
    return StackFrame(method=data["m"], caller=_rep_from_json(data["from"]),
                      callee=_rep_from_json(data["to"]))


def _ancestry_to_json(ancestry):
    return [[_frame_to_json(f) for f in stack] for stack in ancestry]


def _ancestry_from_json(data):
    return tuple(tuple(_frame_from_json(f) for f in stack)
                 for stack in data)


def _event_to_json(event: Event) -> dict:
    if isinstance(event, FieldGet):
        return {"k": "get", "o": _rep_to_json(event.obj), "f": event.field,
                "v": _rep_to_json(event.value)}
    if isinstance(event, FieldSet):
        return {"k": "set", "o": _rep_to_json(event.obj), "f": event.field,
                "v": _rep_to_json(event.value)}
    if isinstance(event, Call):
        return {"k": "call", "o": _rep_to_json(event.obj), "m": event.method,
                "a": [_rep_to_json(a) for a in event.args]}
    if isinstance(event, Return):
        return {"k": "return", "o": _rep_to_json(event.obj),
                "m": event.method, "v": _rep_to_json(event.value)}
    if isinstance(event, Init):
        return {"k": "init", "c": event.class_name,
                "a": [_rep_to_json(a) for a in event.args],
                "o": _rep_to_json(event.obj)}
    if isinstance(event, Fork):
        return {"k": "fork", "tid": event.child_tid,
                "s": _ancestry_to_json(event.ancestry)}
    if isinstance(event, End):
        return {"k": "end", "tid": event.tid,
                "s": _ancestry_to_json(event.ancestry)}
    raise TypeError(f"unserialisable event: {event!r}")


def _event_from_json(data: dict) -> Event:
    kind = data["k"]
    if kind == "get":
        return FieldGet(obj=_rep_from_json(data["o"]), field=data["f"],
                        value=_rep_from_json(data["v"]))
    if kind == "set":
        return FieldSet(obj=_rep_from_json(data["o"]), field=data["f"],
                        value=_rep_from_json(data["v"]))
    if kind == "call":
        return Call(obj=_rep_from_json(data["o"]), method=data["m"],
                    args=tuple(_rep_from_json(a) for a in data["a"]))
    if kind == "return":
        return Return(obj=_rep_from_json(data["o"]), method=data["m"],
                      value=_rep_from_json(data["v"]))
    if kind == "init":
        return Init(class_name=data["c"],
                    args=tuple(_rep_from_json(a) for a in data["a"]),
                    obj=_rep_from_json(data["o"]))
    if kind == "fork":
        return Fork(child_tid=data["tid"],
                    ancestry=_ancestry_from_json(data["s"]))
    if kind == "end":
        return End(tid=data["tid"], ancestry=_ancestry_from_json(data["s"]))
    raise ValueError(f"unknown event kind: {kind!r}")


def entry_to_json(entry: TraceEntry) -> dict:
    """One trace entry as a JSON-encodable dict."""
    return {"eid": entry.eid, "tid": entry.tid, "m": entry.method,
            "rho": _rep_to_json(entry.active),
            "e": _event_to_json(entry.event)}


def entry_from_json(data: dict) -> TraceEntry:
    return TraceEntry(eid=data["eid"], tid=data["tid"], method=data["m"],
                      active=_rep_from_json(data["rho"]),
                      event=_event_from_json(data["e"]))


def _local_key_column(trace: Trace) -> tuple[list, array]:
    """The trace's ``=e`` keys as a file-local table + id column.

    A carried key table may be shared with other traces (a session's or
    a whole pair's), so its ids are remapped to a compact first-use
    ordering; without one, the keys are built from the entries once.
    """
    if trace.key_ids is not None and trace.key_table is not None:
        source_keys = trace.key_table.keys()
        remap: dict[int, int] = {}
        local_keys: list = []
        column = array("I")
        for kid in trace.key_ids:
            lid = remap.get(kid)
            if lid is None:
                lid = remap[kid] = len(local_keys)
                local_keys.append(source_keys[kid])
            column.append(lid)
        return local_keys, column
    table = KeyTable()
    column = table.intern_entries(trace.entries)
    return table.keys(), column


# ---------------------------------------------------------------------------
# Format v3: binary columnar framing with lazy decode.

_V3_MAGIC = b"RPV3"
#: Sentinel u32 for "no value rep" (``active``/``obj``/``value`` None).
_V3_NONE = 0xFFFFFFFF
#: Fixed section order; readers seek by the header's section table, so
#: the order is a writer convention, not a reader assumption — except
#: ``keys`` first, which lets :func:`read_key_table` stop early.
_V3_SECTIONS = ("keys", "eids", "tids", "kids", "meth", "actv", "kind",
                "ops", "args", "strs", "reps", "rich")
_V3_KIND_CODES = {"get": 0, "set": 1, "call": 2, "return": 3,
                  "init": 4, "fork": 5, "end": 6}

_IS_LE = sys.byteorder == "little"


def _json_compact(value) -> bytes:
    """Deterministic JSON bytes (compact separators, sorted keys) — the
    same trace always encodes to the same v3 bytes."""
    return json.dumps(value, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")


def _le_bytes(arr: array) -> bytes:
    """An ``array`` as little-endian bytes regardless of host order."""
    if not _IS_LE:
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _column(buf: memoryview, typecode: str):
    """A packed little-endian section as an indexable int column.

    Little-endian hosts (the overwhelmingly common case) get a zero-copy
    ``memoryview.cast`` over the input buffer; big-endian hosts fall
    back to one ``array`` copy + byteswap.
    """
    itemsize = array(typecode).itemsize
    if len(buf) % itemsize:
        raise ValueError(
            f"misaligned v3 column: {len(buf)} byte(s) is not a "
            f"multiple of the {itemsize}-byte item size")
    if _IS_LE:
        return buf.cast(typecode)
    column = array(typecode)
    column.frombytes(buf)
    column.byteswap()
    return column


def _encode_v3(trace: Trace, metadata: dict) -> bytes:
    """The trace as one v3 frame (see the module docstring for layout)."""
    # Digest first: on a lazy v3-loaded trace this is already seeded
    # from its header, and on a captured trace it is usually cached —
    # either way the header carries it so *readers* never materialise
    # entries just to key a cache.
    digest = trace.content_digest()
    local_keys, kid_column = _local_key_column(trace)

    strs: dict[str, int] = {}
    reps: dict[ValueRep, int] = {}
    rich: list = []
    eids = array("q")
    tids = array("i")
    meth = array("I")
    actv = array("I")
    kinds = bytearray()
    ops = array("I")
    args_pool = array("I")

    def sid(text: str) -> int:
        out = strs.get(text)
        if out is None:
            out = strs[text] = len(strs)
        return out

    def rid(rep: ValueRep | None) -> int:
        if rep is None:
            return _V3_NONE
        out = reps.get(rep)
        if out is None:
            out = reps[rep] = len(reps)
        return out

    def arg_span(event_args) -> tuple[int, int]:
        offset = len(args_pool)
        args_pool.extend(rid(a) for a in event_args)
        return offset, len(event_args)

    for entry in trace.entries:
        eids.append(entry.eid)
        tids.append(entry.tid)
        meth.append(sid(entry.method))
        actv.append(rid(entry.active))
        event = entry.event
        kind = event.kind
        code = _V3_KIND_CODES.get(kind)
        if code is None:
            raise TypeError(f"unserialisable event: {event!r}")
        kinds.append(code)
        if kind == "get" or kind == "set":
            ops.extend((rid(event.obj), sid(event.field),
                        rid(event.value), 0))
        elif kind == "call":
            offset, count = arg_span(event.args)
            ops.extend((rid(event.obj), sid(event.method), offset, count))
        elif kind == "return":
            ops.extend((rid(event.obj), sid(event.method),
                        rid(event.value), 0))
        elif kind == "init":
            offset, count = arg_span(event.args)
            ops.extend((sid(event.class_name), rid(event.obj),
                        offset, count))
        else:  # fork / end — rare rich payload rides the side JSON blob
            ops.extend((len(rich), 0, 0, 0))
            tid = event.child_tid if kind == "fork" else event.tid
            rich.append({"tid": tid, "s": _ancestry_to_json(event.ancestry)})

    blobs = {
        "keys": _json_compact([_plain(key) for key in local_keys]),
        "eids": _le_bytes(eids),
        "tids": _le_bytes(tids),
        "kids": _le_bytes(kid_column),
        "meth": _le_bytes(meth),
        "actv": _le_bytes(actv),
        "kind": bytes(kinds),
        "ops": _le_bytes(ops),
        "args": _le_bytes(args_pool),
        "strs": _json_compact(list(strs)),
        "reps": _json_compact(
            [[r.class_name, _plain(r.serialization), r.location,
              r.creation_seq] for r in reps]),
        "rich": _json_compact(rich),
    }
    header = {"format": 3, "name": trace.name, "entries": len(eids),
              "keys": len(local_keys), "metadata": metadata,
              "digest": digest,
              "sections": [[name, len(blobs[name])]
                           for name in _V3_SECTIONS]}
    header_blob = _json_compact(header)
    return b"".join(
        [_V3_MAGIC, len(header_blob).to_bytes(4, "little"), header_blob]
        + [blobs[name] for name in _V3_SECTIONS])


def _parse_v3_header(blob, path: Path) -> dict:
    try:
        header = json.loads(bytes(blob))
    except (json.JSONDecodeError, UnicodeDecodeError):
        raise ValueError(f"corrupt v3 header in {path}") from None
    if not isinstance(header, dict) or header.get("format") != 3:
        raise ValueError(f"corrupt v3 header in {path}: {header!r}")
    sections = header.get("sections")
    if not isinstance(sections, list) or not all(
            isinstance(item, list) and len(item) == 2
            and isinstance(item[0], str) and isinstance(item[1], int)
            and item[1] >= 0 for item in sections):
        raise ValueError(f"corrupt v3 section table in {path}")
    return header


def _parse_v3_frame(view: memoryview,
                    path: Path) -> tuple[dict, dict[str, memoryview]]:
    """Split one v3 frame into (header, section-name -> buffer view).

    Strict about shortfall (truncated frames raise), lenient about
    trailing bytes — shared-memory segments round payloads up to page
    size.
    """
    if len(view) < 8 or bytes(view[:4]) != _V3_MAGIC:
        raise ValueError(f"truncated v3 trace: {path} "
                         f"({len(view)} byte(s), no frame prelude)")
    header_len = int.from_bytes(view[4:8], "little")
    if 8 + header_len > len(view):
        raise ValueError(
            f"truncated v3 trace: {path} (header wants {header_len} "
            f"byte(s), {len(view) - 8} available)")
    header = _parse_v3_header(view[8:8 + header_len], path)
    sections: dict[str, memoryview] = {}
    offset = 8 + header_len
    for name, length in header["sections"]:
        end = offset + length
        if end > len(view):
            raise ValueError(
                f"truncated v3 trace: {path} (section {name!r} wants "
                f"{length} byte(s), {len(view) - offset} left)")
        sections[name] = view[offset:end]
        offset = end
    return header, sections


def _v3_key_table(header: dict, blob, path: Path) -> KeyTable:
    expected = header.get("keys", 0)
    try:
        raw = json.loads(bytes(blob))
    except (json.JSONDecodeError, UnicodeDecodeError):
        raise ValueError(f"corrupt key table in {path}") from None
    if not isinstance(raw, list) or len(raw) != expected:
        raise ValueError(
            f"truncated key table in trace file: {path} (header claims "
            f"{expected} key(s), section carries "
            f"{len(raw) if isinstance(raw, list) else '?'})")
    table = KeyTable()
    for key in raw:
        table.intern(_untuple(key))
    if len(table) != expected:
        # Same invariant as the v2 reader: duplicate keys would shift
        # every id after them (intern dedupes).
        raise ValueError(f"corrupt key table: {expected} key(s) but "
                         f"{len(table)} distinct key(s)")
    return table


class _V3Decoder:
    """On-demand entry construction over one parsed v3 frame.

    The int columns are zero-copy views (:func:`_column`); the JSON
    pools (strings, value reps, rich Fork/End payloads) parse lazily on
    the first entry materialisation, so loads that only touch columns
    never run the parses at all.  Concurrent first-parses are a benign
    race — both threads produce equal pools and one wins the slot.
    """

    __slots__ = ("eids", "tids", "kids", "meth", "actv", "kinds", "ops",
                 "args", "_strs_blob", "_reps_blob", "_rich_blob",
                 "_strs", "_reps", "_rich")

    def __init__(self, sections: dict[str, memoryview]):
        self.eids = _column(sections["eids"], "q")
        self.tids = _column(sections["tids"], "i")
        self.kids = _column(sections["kids"], "I")
        self.meth = _column(sections["meth"], "I")
        self.actv = _column(sections["actv"], "I")
        self.kinds = sections["kind"]
        self.ops = _column(sections["ops"], "I")
        self.args = _column(sections["args"], "I")
        self._strs_blob = sections["strs"]
        self._reps_blob = sections["reps"]
        self._rich_blob = sections["rich"]
        self._strs = None
        self._reps = None
        self._rich = None

    def strings(self) -> list:
        strs = self._strs
        if strs is None:
            strs = self._strs = json.loads(bytes(self._strs_blob))
        return strs

    def rep_pool(self) -> list:
        reps = self._reps
        if reps is None:
            reps = self._reps = [
                ValueRep(class_name=c, serialization=_untuple(s),
                         location=l, creation_seq=q)
                for c, s, l, q in json.loads(bytes(self._reps_blob))]
        return reps

    def rich_pool(self) -> list:
        rich = self._rich
        if rich is None:
            rich = self._rich = json.loads(bytes(self._rich_blob))
        return rich

    def _rep(self, rep_id: int) -> ValueRep | None:
        if rep_id == _V3_NONE:
            return None
        return self.rep_pool()[rep_id]

    def entry(self, position: int) -> TraceEntry:
        strs = self.strings()
        code = self.kinds[position]
        base = 4 * position
        a, b, c, d = self.ops[base:base + 4]
        if code == 0:
            event = FieldGet(obj=self._rep(a), field=strs[b],
                             value=self._rep(c))
        elif code == 1:
            event = FieldSet(obj=self._rep(a), field=strs[b],
                             value=self._rep(c))
        elif code == 2:
            event = Call(obj=self._rep(a), method=strs[b],
                         args=tuple(self._rep(r)
                                    for r in self.args[c:c + d]))
        elif code == 3:
            event = Return(obj=self._rep(a), method=strs[b],
                           value=self._rep(c))
        elif code == 4:
            event = Init(class_name=strs[a],
                         args=tuple(self._rep(r)
                                    for r in self.args[c:c + d]),
                         obj=self._rep(b))
        elif code == 5 or code == 6:
            payload = self.rich_pool()[a]
            ancestry = _ancestry_from_json(payload["s"])
            if code == 5:
                event = Fork(child_tid=payload["tid"], ancestry=ancestry)
            else:
                event = End(tid=payload["tid"], ancestry=ancestry)
        else:
            raise ValueError(f"unknown v3 event kind code: {code}")
        return TraceEntry(eid=self.eids[position],
                          tid=self.tids[position],
                          method=strs[self.meth[position]],
                          active=self._rep(self.actv[position]),
                          event=event)


def _load_v3(view: memoryview, path: Path, keepalive=None) -> Trace:
    """Build a lazy :class:`Trace` over one v3 frame.

    ``keepalive`` pins whatever owns the backing buffer (a mapped
    shared-memory segment) on the returned trace's entry sequence.
    """
    header, sections = _parse_v3_frame(view, path)
    count = header.get("entries", 0)
    missing = [name for name in _V3_SECTIONS if name not in sections]
    if missing:
        raise ValueError(f"corrupt v3 section table in {path}: "
                         f"missing {', '.join(missing)}")
    decoder = _V3Decoder(sections)
    for name, column, width in (("eids", decoder.eids, 1),
                                ("tids", decoder.tids, 1),
                                ("kids", decoder.kids, 1),
                                ("meth", decoder.meth, 1),
                                ("actv", decoder.actv, 1),
                                ("kind", decoder.kinds, 1),
                                ("ops", decoder.ops, 4)):
        if len(column) != count * width:
            raise ValueError(
                f"corrupt v3 trace: {path} (column {name!r} carries "
                f"{len(column)} item(s) for {count} entries)")
    key_count = header.get("keys", 0)
    if count and max(decoder.kids) >= key_count:
        raise ValueError(
            f"corrupt trace row: kid {max(decoder.kids)} outside the "
            f"{key_count}-entry key table")
    entries = LazyEntrySequence(decoder.entry, count,
                                tids=decoder.tids, owner=keepalive)
    # The key table itself is also lazy (a thunk Trace materialises on
    # first access): a load that never consults =e keys — a capture
    # outcome cached by digest, a store listing — never parses the key
    # section.  The kid-range check above used the header count, so a
    # lying section still fails loudly when touched.
    keys_blob = sections["keys"]
    trace = Trace(entries, name=header.get("name", ""),
                  metadata=header.get("metadata") or {},
                  key_table=lambda: _v3_key_table(header, keys_blob,
                                                  path),
                  key_ids=decoder.kids)
    digest = header.get("digest")
    if isinstance(digest, str) and digest:
        # Seeding from the header keeps digest-keyed consumers (diff
        # cache, wire memos) from materialising a single entry; the
        # encoder computed it from the real content, so bit-identity
        # with an eager load is preserved.
        trace._content_digest = digest
    return trace


# ---------------------------------------------------------------------------
# Public read/write API.


def save_trace(trace: Trace, path: str | Path,
               extra_metadata: dict | None = None,
               version: int | None = None) -> None:
    """Write a trace file: binary v3 (the default), or text v1/v2.

    ``extra_metadata`` is merged over the trace's own metadata in the
    header (the :class:`repro.api.store.TraceStore` records provenance
    this way without mutating the in-memory trace).  ``version=None``
    defers to :func:`wire_format`; ``version=1`` emits the legacy
    table-less text format.
    """
    # Validate before open() truncates an existing file.
    version = wire_format(version)
    path = Path(path)
    if version == 3:
        metadata = dict(trace.metadata)
        if extra_metadata:
            metadata.update(extra_metadata)
        with path.open("wb") as handle:
            handle.write(_encode_v3(trace, metadata))
        return
    with path.open("w", encoding="utf-8") as handle:
        write_trace(handle, trace, extra_metadata=extra_metadata,
                    version=version)


def write_trace(handle, trace: Trace,
                extra_metadata: dict | None = None,
                version: int = TEXT_FORMAT_VERSION) -> None:
    """Write a trace to an open *text* handle (the body of
    :func:`save_trace` for v1/v2; v3 is binary — see
    :func:`dumps_trace_bytes`)."""
    if version not in TEXT_VERSIONS:
        raise ValueError(
            f"cannot write trace format version {version!r} to a text "
            f"handle (text formats: {TEXT_VERSIONS}; format 3 is binary "
            f"— use dumps_trace_bytes/save_trace)")
    metadata = dict(trace.metadata)
    if extra_metadata:
        metadata.update(extra_metadata)
    if version == 1:
        header = {"format": 1, "name": trace.name,
                  "entries": len(trace), "metadata": metadata}
        handle.write(json.dumps(header) + "\n")
        for entry in trace.entries:
            handle.write(json.dumps(entry_to_json(entry)) + "\n")
        return
    local_keys, column = _local_key_column(trace)
    header = {"format": 2, "name": trace.name, "entries": len(trace),
              "keys": len(local_keys), "metadata": metadata}
    handle.write(json.dumps(header) + "\n")
    for key in local_keys:
        handle.write(json.dumps({"key": _plain(key)}) + "\n")
    for entry, kid in zip(trace.entries, column):
        row = entry_to_json(entry)
        row["kid"] = kid
        handle.write(json.dumps(row) + "\n")


def dumps_trace(trace: Trace, extra_metadata: dict | None = None,
                version: int = TEXT_FORMAT_VERSION) -> str:
    """The trace as serialisation *text* (v2 by default, v1 on
    request).  The binary v3 wire has no text form — use
    :func:`dumps_trace_bytes` for "whatever the session's wire format
    is"."""
    buffer = io.StringIO()
    write_trace(buffer, trace, extra_metadata=extra_metadata,
                version=version)
    return buffer.getvalue()


def dumps_trace_bytes(trace: Trace,
                      extra_metadata: dict | None = None,
                      version: int | None = None) -> bytes:
    """The trace as wire bytes — *the* encode entry point for shipping
    (shared-memory segments, service uploads): binary v3 by default
    (see :func:`wire_format`), UTF-8 v1/v2 text on request.  Bytes are
    produced exactly once; :func:`loads_trace` accepts them back
    directly."""
    version = wire_format(version)
    if version == 3:
        metadata = dict(trace.metadata)
        if extra_metadata:
            metadata.update(extra_metadata)
        return _encode_v3(trace, metadata)
    return dumps_trace(trace, extra_metadata=extra_metadata,
                       version=version).encode("utf-8")


def loads_trace(data: "str | bytes | bytearray | memoryview",
                keepalive=None) -> Trace:
    """Inverse of :func:`dumps_trace_bytes` (and of
    :func:`dumps_trace` for text).

    Binary v3 payloads decode **lazily and zero-copy**: the returned
    trace's columns are ``memoryview`` casts over ``data`` itself (no
    intermediate copy — a mapped shared-memory segment decodes in
    place) and entries materialise on demand.  ``keepalive`` pins the
    buffer's owner (e.g. the mapped segment) for the trace's lifetime;
    plain ``bytes`` payloads need none (the views hold the object).
    """
    if isinstance(data, str):
        return _read_trace(io.StringIO(data), Path("<wire>"))
    view = memoryview(data)
    if len(view) >= 4 and bytes(view[:4]) == _V3_MAGIC:
        return _load_v3(view, Path("<wire>"), keepalive)
    return _read_trace(io.StringIO(bytes(view).decode("utf-8")),
                       Path("<wire>"))


def read_header(path: str | Path) -> dict:
    """Read just the header of a trace file (cheap listing) — the
    first line of a text file, the O(1) frame prelude of a v3 file."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(4)
        if magic == _V3_MAGIC:
            raw = handle.read(4)
            if len(raw) < 4:
                raise ValueError(f"truncated v3 trace: {path} "
                                 f"(no header length)")
            header_len = int.from_bytes(raw, "little")
            blob = handle.read(header_len)
            if len(blob) < header_len:
                raise ValueError(
                    f"truncated v3 trace: {path} (header wants "
                    f"{header_len} byte(s), {len(blob)} available)")
            return _parse_v3_header(blob, path)
        line = magic + handle.readline()
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as error:
        raise ValueError(f"not a trace file: {path} ({error})") from None
    return _parse_header(text, path)


def _parse_header(header_line: str, path: Path) -> dict:
    if not header_line:
        raise ValueError(f"empty trace file: {path}")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as error:
        raise ValueError(f"not a trace file: {path} ({error})") from None
    if not isinstance(header, dict) or "format" not in header:
        raise ValueError(f"unsupported trace format: {header!r}")
    version = header["format"]
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported trace format version {version!r} in {path} "
            f"(this reader supports: "
            f"{', '.join(str(v) for v in SUPPORTED_VERSIONS)})")
    if version not in TEXT_VERSIONS:
        # A JSON line claiming format 3 is not a v3 file — the real
        # thing starts with the binary magic, not a text header.
        raise ValueError(
            f"corrupt trace file: {path} claims format {version} but "
            f"uses text framing (v3 is binary)")
    return header


def _read_table(handle, header: dict) -> KeyTable:
    """Consume the key-table lines following a v2 header."""
    table = KeyTable()
    expected = header.get("keys", 0)
    for _ in range(expected):
        line = handle.readline()
        if not line:
            raise ValueError("truncated key table in trace file")
        table.intern(_untuple(json.loads(line)["key"]))
    if len(table) != expected:
        # A duplicate key line would silently shift every id after it
        # (intern dedupes) — reject the file instead of mis-diffing.
        raise ValueError(f"corrupt key table: {expected} key line(s) but "
                         f"{len(table)} distinct key(s)")
    return table


def read_key_table(path: str | Path) -> tuple[dict, KeyTable]:
    """Stream (header, key table) without materialising entries.

    v3 files seek straight to the table — it is the first section
    after the frame prelude, so listing a store never reads entry
    columns at all.  For v1 files — which carry no table — the table
    is rebuilt by streaming entries one at a time, still without
    holding the whole trace in memory.
    """
    path = Path(path)
    with path.open("rb") as probe:
        magic = probe.read(4)
        if magic == _V3_MAGIC:
            raw = probe.read(4)
            if len(raw) < 4:
                raise ValueError(f"truncated v3 trace: {path} "
                                 f"(no header length)")
            header_len = int.from_bytes(raw, "little")
            blob = probe.read(header_len)
            if len(blob) < header_len:
                raise ValueError(
                    f"truncated v3 trace: {path} (header wants "
                    f"{header_len} byte(s), {len(blob)} available)")
            header = _parse_v3_header(blob, path)
            keys_len = None
            for name, size in header["sections"]:
                if name == "keys":
                    keys_len = size
                    break
                probe.seek(size, 1)  # seek past earlier sections
            if keys_len is None:
                raise ValueError(f"corrupt v3 section table in {path}: "
                                 f"missing keys")
            keys_blob = probe.read(keys_len)
            if len(keys_blob) < keys_len:
                raise ValueError(
                    f"truncated v3 trace: {path} (key table wants "
                    f"{keys_len} byte(s))")
            return header, _v3_key_table(header, keys_blob, path)
    with path.open("r", encoding="utf-8") as handle:
        header = _parse_header(handle.readline(), path)
        if header["format"] >= 2:
            return header, _read_table(handle, header)
        table = KeyTable()
        for line in handle:
            if line.strip():
                table.intern_entry(entry_from_json(json.loads(line)))
        return header, table


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace` (any format).

    v2/v3 traces come back carrying their key table and id column, so
    a later interned diff never recomputes an ``=e`` key; v3 traces
    additionally decode lazily (see :func:`loads_trace`).
    """
    path = Path(path)
    with path.open("rb") as probe:
        magic = probe.read(4)
    if magic == _V3_MAGIC:
        return _load_v3(memoryview(path.read_bytes()), path)
    with path.open("r", encoding="utf-8") as handle:
        return _read_trace(handle, path)


def _read_trace(handle, path: Path) -> Trace:
    header = _parse_header(handle.readline(), path)
    if header["format"] >= 2:
        table = _read_table(handle, header)
        entries: list[TraceEntry] = []
        column = array("I")
        have_kids = True
        table_size = len(table)
        for line in handle:
            if not line.strip():
                continue
            data = json.loads(line)
            entries.append(entry_from_json(data))
            kid = data.get("kid")
            if kid is None:
                have_kids = False
            elif not isinstance(kid, int) or not 0 <= kid < table_size:
                raise ValueError(
                    f"corrupt trace row: kid {kid!r} outside the "
                    f"{table_size}-entry key table")
            elif have_kids:
                column.append(kid)
        return Trace(entries, name=header.get("name", ""),
                     metadata=header.get("metadata") or {},
                     key_table=table if have_kids else None,
                     key_ids=column if have_kids else None)
    entries = [entry_from_json(json.loads(line))
               for line in handle if line.strip()]
    return Trace(entries, name=header.get("name", ""),
                 metadata=header.get("metadata") or {})


def iter_entries(path: str | Path) -> Iterator[TraceEntry]:
    """Stream entries from a trace file without loading it whole.

    v3 files decode lazily anyway, so iteration builds one entry at a
    time over the mapped columns (the file bytes are held for the
    duration of the walk, but no entry list ever exists at once).
    """
    path = Path(path)
    with path.open("rb") as probe:
        magic = probe.read(4)
    if magic == _V3_MAGIC:
        header, sections = _parse_v3_frame(
            memoryview(path.read_bytes()), path)
        decoder = _V3Decoder(sections)
        for position in range(header.get("entries", 0)):
            yield decoder.entry(position)
        return
    with path.open("r", encoding="utf-8") as handle:
        header = _parse_header(handle.readline(), path)
        for _ in range(header.get("keys", 0)):
            handle.readline()  # skip the key table
        for line in handle:
            if line.strip():
                yield entry_from_json(json.loads(line))


def save_entries(entries: Iterable[TraceEntry], path: str | Path,
                 name: str = "", metadata: dict | None = None) -> int:
    """Write bare entries (used by trace segmentation); returns count.

    Emits v2 in two passes — intern the key table, then encode rows
    straight to disk — so peak memory stays at the caller's entry
    buffer (segment flushes exist to bound tracing memory) plus the
    table, never a second full JSON copy of the segment.
    """
    path = Path(path)
    if not isinstance(entries, (list, tuple)):
        entries = list(entries)
    table = KeyTable()
    column = table.intern_entries(entries)
    with path.open("w", encoding="utf-8") as handle:
        header = {"format": 2, "name": name, "entries": -1,
                  "keys": len(table), "metadata": metadata or {}}
        handle.write(json.dumps(header) + "\n")
        for key in table.keys():
            handle.write(json.dumps({"key": _plain(key)}) + "\n")
        for entry, kid in zip(entries, column):
            row = entry_to_json(entry)
            row["kid"] = kid
            handle.write(json.dumps(row) + "\n")
    return len(entries)
