"""Trace serialisation to/from JSON-lines files.

RPRISM offloads trace segments to disk while the program runs and
analyses them offline; this module provides the on-disk format.

Format **v2** (the default) is streaming and key-table aware::

    {"format": 2, "name": ..., "entries": n, "keys": k, "metadata": {...}}
    {"key": <plain =e key>}          # k lines, id = line order
    {"eid": ..., ..., "kid": <id>}   # n entry rows

The key table between the header and the rows lets readers recover the
interned ``=e`` representation without recomputing a single
``entry.key()`` (:func:`load_trace` attaches it to the trace), and lets
:func:`read_key_table` stream just the table — the
:class:`~repro.api.store.TraceStore` lists and keys traces without ever
materialising full entries.  Format **v1** (header + rows, no table)
remains fully readable; :func:`save_trace` can still emit it via
``version=1``.  Unknown format versions raise a clear ``ValueError``
instead of silently mis-parsing.

JSON has no tuples, so serialisations (which are nested tuples in memory,
for hashability) are converted to lists on write and recursively back to
tuples on read — round-tripping preserves ``=e`` keys exactly.
"""

from __future__ import annotations

import io
import json
from array import array
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.entries import TraceEntry
from repro.core.events import (Call, End, Event, FieldGet, FieldSet, Fork,
                               Init, Return, StackFrame)
from repro.core.keytable import KeyTable
from repro.core.traces import Trace
from repro.core.values import ValueRep

FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)


def _rep_to_json(rep: ValueRep | None):
    if rep is None:
        return None
    return {"c": rep.class_name, "s": _plain(rep.serialization),
            "l": rep.location, "q": rep.creation_seq}


def _plain(value):
    """Tuples -> lists (JSON-encodable), tagged so they round-trip."""
    if isinstance(value, tuple):
        return {"t": [_plain(v) for v in value]}
    return value


def _untuple(value):
    if isinstance(value, dict) and set(value) == {"t"}:
        return tuple(_untuple(v) for v in value["t"])
    return value


def _rep_from_json(data) -> ValueRep | None:
    if data is None:
        return None
    return ValueRep(class_name=data["c"], serialization=_untuple(data["s"]),
                    location=data["l"], creation_seq=data["q"])


def _frame_to_json(frame: StackFrame):
    return {"m": frame.method, "from": _rep_to_json(frame.caller),
            "to": _rep_to_json(frame.callee)}


def _frame_from_json(data) -> StackFrame:
    return StackFrame(method=data["m"], caller=_rep_from_json(data["from"]),
                      callee=_rep_from_json(data["to"]))


def _ancestry_to_json(ancestry):
    return [[_frame_to_json(f) for f in stack] for stack in ancestry]


def _ancestry_from_json(data):
    return tuple(tuple(_frame_from_json(f) for f in stack)
                 for stack in data)


def _event_to_json(event: Event) -> dict:
    if isinstance(event, FieldGet):
        return {"k": "get", "o": _rep_to_json(event.obj), "f": event.field,
                "v": _rep_to_json(event.value)}
    if isinstance(event, FieldSet):
        return {"k": "set", "o": _rep_to_json(event.obj), "f": event.field,
                "v": _rep_to_json(event.value)}
    if isinstance(event, Call):
        return {"k": "call", "o": _rep_to_json(event.obj), "m": event.method,
                "a": [_rep_to_json(a) for a in event.args]}
    if isinstance(event, Return):
        return {"k": "return", "o": _rep_to_json(event.obj),
                "m": event.method, "v": _rep_to_json(event.value)}
    if isinstance(event, Init):
        return {"k": "init", "c": event.class_name,
                "a": [_rep_to_json(a) for a in event.args],
                "o": _rep_to_json(event.obj)}
    if isinstance(event, Fork):
        return {"k": "fork", "tid": event.child_tid,
                "s": _ancestry_to_json(event.ancestry)}
    if isinstance(event, End):
        return {"k": "end", "tid": event.tid,
                "s": _ancestry_to_json(event.ancestry)}
    raise TypeError(f"unserialisable event: {event!r}")


def _event_from_json(data: dict) -> Event:
    kind = data["k"]
    if kind == "get":
        return FieldGet(obj=_rep_from_json(data["o"]), field=data["f"],
                        value=_rep_from_json(data["v"]))
    if kind == "set":
        return FieldSet(obj=_rep_from_json(data["o"]), field=data["f"],
                        value=_rep_from_json(data["v"]))
    if kind == "call":
        return Call(obj=_rep_from_json(data["o"]), method=data["m"],
                    args=tuple(_rep_from_json(a) for a in data["a"]))
    if kind == "return":
        return Return(obj=_rep_from_json(data["o"]), method=data["m"],
                      value=_rep_from_json(data["v"]))
    if kind == "init":
        return Init(class_name=data["c"],
                    args=tuple(_rep_from_json(a) for a in data["a"]),
                    obj=_rep_from_json(data["o"]))
    if kind == "fork":
        return Fork(child_tid=data["tid"],
                    ancestry=_ancestry_from_json(data["s"]))
    if kind == "end":
        return End(tid=data["tid"], ancestry=_ancestry_from_json(data["s"]))
    raise ValueError(f"unknown event kind: {kind!r}")


def entry_to_json(entry: TraceEntry) -> dict:
    """One trace entry as a JSON-encodable dict."""
    return {"eid": entry.eid, "tid": entry.tid, "m": entry.method,
            "rho": _rep_to_json(entry.active),
            "e": _event_to_json(entry.event)}


def entry_from_json(data: dict) -> TraceEntry:
    return TraceEntry(eid=data["eid"], tid=data["tid"], method=data["m"],
                      active=_rep_from_json(data["rho"]),
                      event=_event_from_json(data["e"]))


def _local_key_column(trace: Trace) -> tuple[list, array]:
    """The trace's ``=e`` keys as a file-local table + id column.

    A carried key table may be shared with other traces (a session's or
    a whole pair's), so its ids are remapped to a compact first-use
    ordering; without one, the keys are built from the entries once.
    """
    if trace.key_ids is not None and trace.key_table is not None:
        source_keys = trace.key_table.keys()
        remap: dict[int, int] = {}
        local_keys: list = []
        column = array("I")
        for kid in trace.key_ids:
            lid = remap.get(kid)
            if lid is None:
                lid = remap[kid] = len(local_keys)
                local_keys.append(source_keys[kid])
            column.append(lid)
        return local_keys, column
    table = KeyTable()
    column = table.intern_entries(trace.entries)
    return table.keys(), column


def save_trace(trace: Trace, path: str | Path,
               extra_metadata: dict | None = None,
               version: int = FORMAT_VERSION) -> None:
    """Write a trace as JSON lines (header, key table, entry rows).

    ``extra_metadata`` is merged over the trace's own metadata in the
    header (the :class:`repro.api.store.TraceStore` records provenance
    this way without mutating the in-memory trace).  ``version=1``
    emits the legacy table-less format.
    """
    if version not in SUPPORTED_VERSIONS:
        # Validate before open("w") truncates an existing file.
        raise ValueError(f"cannot write trace format version {version!r} "
                         f"(supported: {SUPPORTED_VERSIONS})")
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        write_trace(handle, trace, extra_metadata=extra_metadata,
                    version=version)


def write_trace(handle, trace: Trace,
                extra_metadata: dict | None = None,
                version: int = FORMAT_VERSION) -> None:
    """Write a trace to an open text handle (the body of
    :func:`save_trace`, reusable for in-memory wire encoding)."""
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"cannot write trace format version {version!r} "
                         f"(supported: {SUPPORTED_VERSIONS})")
    metadata = dict(trace.metadata)
    if extra_metadata:
        metadata.update(extra_metadata)
    if version == 1:
        header = {"format": 1, "name": trace.name,
                  "entries": len(trace), "metadata": metadata}
        handle.write(json.dumps(header) + "\n")
        for entry in trace.entries:
            handle.write(json.dumps(entry_to_json(entry)) + "\n")
        return
    local_keys, column = _local_key_column(trace)
    header = {"format": 2, "name": trace.name, "entries": len(trace),
              "keys": len(local_keys), "metadata": metadata}
    handle.write(json.dumps(header) + "\n")
    for key in local_keys:
        handle.write(json.dumps({"key": _plain(key)}) + "\n")
    for entry, kid in zip(trace.entries, column):
        row = entry_to_json(entry)
        row["kid"] = kid
        handle.write(json.dumps(row) + "\n")


def dumps_trace(trace: Trace, extra_metadata: dict | None = None,
                version: int = FORMAT_VERSION) -> str:
    """The trace as serialisation-v2 text — the wire format process
    capture/diff workers ship traces back through (key table included,
    so the receiving side never recomputes an ``=e`` key)."""
    buffer = io.StringIO()
    write_trace(buffer, trace, extra_metadata=extra_metadata,
                version=version)
    return buffer.getvalue()


def dumps_trace_bytes(trace: Trace,
                      extra_metadata: dict | None = None,
                      version: int = FORMAT_VERSION) -> bytes:
    """:func:`dumps_trace` as UTF-8 bytes — the payload layout
    shared-memory trace shipping (:mod:`repro.exec.shm`) writes into a
    segment; :func:`loads_trace` accepts it back directly."""
    return dumps_trace(trace, extra_metadata=extra_metadata,
                       version=version).encode("utf-8")


def loads_trace(data: str | bytes) -> Trace:
    """Inverse of :func:`dumps_trace` (and, for ``bytes``, of
    :func:`dumps_trace_bytes` — a segment payload decodes without an
    intermediate copy by the caller)."""
    if isinstance(data, bytes):
        data = data.decode("utf-8")
    return _read_trace(io.StringIO(data), Path("<wire>"))


def read_header(path: str | Path) -> dict:
    """Read just the header line of a trace file (cheap listing)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return _parse_header(handle.readline(), path)


def _parse_header(header_line: str, path: Path) -> dict:
    if not header_line:
        raise ValueError(f"empty trace file: {path}")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as error:
        raise ValueError(f"not a trace file: {path} ({error})") from None
    if not isinstance(header, dict) or "format" not in header:
        raise ValueError(f"unsupported trace format: {header!r}")
    version = header["format"]
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported trace format version {version!r} in {path} "
            f"(this reader supports: "
            f"{', '.join(str(v) for v in SUPPORTED_VERSIONS)})")
    return header


def _read_table(handle, header: dict) -> KeyTable:
    """Consume the key-table lines following a v2 header."""
    table = KeyTable()
    expected = header.get("keys", 0)
    for _ in range(expected):
        line = handle.readline()
        if not line:
            raise ValueError("truncated key table in trace file")
        table.intern(_untuple(json.loads(line)["key"]))
    if len(table) != expected:
        # A duplicate key line would silently shift every id after it
        # (intern dedupes) — reject the file instead of mis-diffing.
        raise ValueError(f"corrupt key table: {expected} key line(s) but "
                         f"{len(table)} distinct key(s)")
    return table


def read_key_table(path: str | Path) -> tuple[dict, KeyTable]:
    """Stream (header, key table) without materialising entries.

    For v1 files — which carry no table — the table is rebuilt by
    streaming entries one at a time, still without holding the whole
    trace in memory.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = _parse_header(handle.readline(), path)
        if header["format"] >= 2:
            return header, _read_table(handle, header)
        table = KeyTable()
        for line in handle:
            if line.strip():
                table.intern_entry(entry_from_json(json.loads(line)))
        return header, table


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`.

    v2 traces come back carrying their key table and id column, so a
    later interned diff never recomputes an ``=e`` key.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return _read_trace(handle, path)


def _read_trace(handle, path: Path) -> Trace:
    header = _parse_header(handle.readline(), path)
    if header["format"] >= 2:
        table = _read_table(handle, header)
        entries: list[TraceEntry] = []
        column = array("I")
        have_kids = True
        table_size = len(table)
        for line in handle:
            if not line.strip():
                continue
            data = json.loads(line)
            entries.append(entry_from_json(data))
            kid = data.get("kid")
            if kid is None:
                have_kids = False
            elif not isinstance(kid, int) or not 0 <= kid < table_size:
                raise ValueError(
                    f"corrupt trace row: kid {kid!r} outside the "
                    f"{table_size}-entry key table")
            elif have_kids:
                column.append(kid)
        return Trace(entries, name=header.get("name", ""),
                     metadata=header.get("metadata") or {},
                     key_table=table if have_kids else None,
                     key_ids=column if have_kids else None)
    entries = [entry_from_json(json.loads(line))
               for line in handle if line.strip()]
    return Trace(entries, name=header.get("name", ""),
                 metadata=header.get("metadata") or {})


def iter_entries(path: str | Path) -> Iterator[TraceEntry]:
    """Stream entries from a trace file without loading it whole."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = _parse_header(handle.readline(), path)
        for _ in range(header.get("keys", 0)):
            handle.readline()  # skip the key table
        for line in handle:
            if line.strip():
                yield entry_from_json(json.loads(line))


def save_entries(entries: Iterable[TraceEntry], path: str | Path,
                 name: str = "", metadata: dict | None = None) -> int:
    """Write bare entries (used by trace segmentation); returns count.

    Emits v2 in two passes — intern the key table, then encode rows
    straight to disk — so peak memory stays at the caller's entry
    buffer (segment flushes exist to bound tracing memory) plus the
    table, never a second full JSON copy of the segment.
    """
    path = Path(path)
    if not isinstance(entries, (list, tuple)):
        entries = list(entries)
    table = KeyTable()
    column = table.intern_entries(entries)
    with path.open("w", encoding="utf-8") as handle:
        header = {"format": 2, "name": name, "entries": -1,
                  "keys": len(table), "metadata": metadata or {}}
        handle.write(json.dumps(header) + "\n")
        for key in table.keys():
            handle.write(json.dumps({"key": _plain(key)}) + "\n")
        for entry, kid in zip(entries, column):
            row = entry_to_json(entry)
            row["kid"] = kid
            handle.write(json.dumps(row) + "\n")
    return len(entries)
