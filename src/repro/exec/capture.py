"""Capture execution over the executor layer.

The seed serialised every capture behind one process-wide lock (a
single ``sys.settrace`` weaver exists per interpreter), so batches only
ever parallelised the diff half of each job.  This module makes the
capture half scale too: a :class:`CaptureTask` describes one run
declaratively (callable + arguments + pointcut filter), and
:func:`run_capture_tasks` evaluates a batch through any
:class:`~repro.exec.executors.Executor`:

* **in-process executors** (serial / threads) run each task under
  :data:`CAPTURE_LOCK` exactly as before — one weaver, interleaved
  captures;
* **process executors** dispatch tasks to worker processes.  Each
  worker owns its own weaver (no lock needed: pool workers evaluate one
  task at a time), captures locally, and ships the finished trace back
  as wire bytes (binary v3 by default) — key table included — so the
  parent decodes interned traces lazily, without recomputing a single
  ``=e`` key or materialising an entry it never looks at.  The
  parent then re-homes each carried key column into the session's
  ingest table (one intern per *distinct* key), preserving the session
  invariant that all its traces share one id space.

Process tasks cross a pickle boundary: callables must be module-level
(or given as ``"package.module:attr"`` references) and inputs
picklable.  :func:`ensure_portable` turns the inevitable obscure
pickling error into an actionable one up front.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.serialize import dumps_trace_bytes, loads_trace
from repro.capture.filters import TraceFilter
from repro.capture.tracer import CaptureResult, trace_call
from repro.core.keytable import KeyTable
from repro.core.traces import Trace
from repro.exec.executors import Executor, lease_chunks, resolve_executor
from repro.exec import shm
from repro.exec.shm import (adopt_segment_view, parent_registry,
                            ship_untracked, shm_available)

#: Process-wide capture serialisation for *in-process* execution (one
#: ``sys.settrace`` weaver per interpreter; re-entrant so a nested
#: capture attempt still reaches the Tracer's own "already active"
#: diagnostic).  Process workers never touch it — each worker process
#: has a weaver of its own and runs one task at a time.
CAPTURE_LOCK = threading.RLock()


class RemoteCaptureError(RuntimeError):
    """An exception re-raised from a capture worker process, carrying
    the original type name (the object itself may not be picklable)."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


def resolve_callable(ref: "Callable | str") -> Callable:
    """``"package.module:attr.path"`` -> the callable it names."""
    if callable(ref):
        return ref
    module_name, sep, attr_path = ref.partition(":")
    if not sep or not module_name or not attr_path:
        raise ValueError(f"callable reference must look like "
                         f"'package.module:attr', got {ref!r}")
    from importlib import import_module
    target = import_module(module_name)
    for attr in attr_path.split("."):
        target = getattr(target, attr)
    if not callable(target):
        raise TypeError(f"{ref!r} does not name a callable")
    return target


@dataclass(slots=True)
class CaptureTask:
    """One capture, described declaratively (and picklably).

    ``func`` is the entry point — a callable, or a
    ``"package.module:attr"`` reference resolved inside the worker.
    """

    func: "Callable | str"
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    name: str = ""
    filter: TraceFilter | None = None
    record_fields: bool = True


@dataclass(slots=True)
class CaptureOutcome:
    """What one capture task produced.

    ``worker`` identifies where the capture ran (``pid:N`` for process
    workers, ``thread:NAME`` in-process) — the pipeline surfaces it so
    parallel runs are debuggable.  ``error`` mirrors
    :class:`~repro.capture.tracer.CaptureResult`: exceptions raised by
    the traced program are captured, not propagated (regressing runs
    may throw; their traces are exactly what the analysis needs).
    """

    name: str
    trace: Trace | None = None
    result: object = None
    error: BaseException | None = None
    seconds: float = 0.0
    worker: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None

    def capture_result(self) -> CaptureResult:
        """This outcome as the capture layer's result type."""
        return CaptureResult(self.trace, result=self.result,
                             error=self.error)


def ensure_portable(task: CaptureTask) -> None:
    """Fail fast — with an actionable message — if ``task`` cannot
    cross the process boundary."""
    try:
        pickle.dumps(task)
    except Exception as exc:  # noqa: BLE001 - any pickling failure
        raise TypeError(
            f"capture task {task.name or task.func!r} is not picklable "
            f"({type(exc).__name__}: {exc}); process executors need "
            f"module-level callables (or 'module:attr' references) and "
            f"picklable arguments — use the serial or threads executor "
            f"for closures") from None


def _picklable_or_none(value):
    """The traced call's return value, if it can ride the wire."""
    try:
        pickle.dumps(value)
    except Exception:  # noqa: BLE001 - unpicklable results are dropped
        return None
    return value


def run_capture_worker(task: CaptureTask) -> dict:
    """Evaluate one capture task inside a worker process.

    Returns a wire dict: the trace as wire bytes (binary v3 by
    default, file-local key table included), the error as (type,
    message) strings, the worker pid, and the capture's wall-clock
    seconds.  No capture lock is taken — this process owns its weaver
    outright.
    """
    from repro.exec.workerstate import worker_state

    state = worker_state()
    func = resolve_callable(task.func)
    started = time.perf_counter()
    captured = trace_call(func, *task.args, name=task.name,
                          filter=task.filter,
                          record_fields=task.record_fields,
                          key_table=state.ingest_table(),
                          **task.kwargs)
    seconds = time.perf_counter() - started
    state.captures += 1
    error = None
    if captured.error is not None:
        error = (type(captured.error).__name__, str(captured.error))
    return {
        "trace": dumps_trace_bytes(captured.trace),
        "result": _picklable_or_none(captured.result),
        "error": error,
        "seconds": seconds,
        "pid": os.getpid(),
    }


def run_capture_lease(payload: dict) -> dict:
    """Evaluate one *lease* — a chunk of capture tasks — in a worker.

    One round trip covers the whole chunk, and every captured trace is
    shipped home through a single shared-memory segment (wire payloads
    concatenated; each outcome carries its ``(off, len)`` frame) when
    ``payload["ship"]`` allows and the platform cooperates, falling
    back to inline bytes otherwise.  The segment is created *untracked*
    under the parent's prefix: the parent adopts and unlinks it on
    receipt, and sweeps it if this worker dies first.

    The worker's pid-local caches make repeat content cheap: traces
    intern into the worker's warm key table, encoded wire bytes are
    memoised by content digest (produced exactly once — never
    re-encoded per send), and the decoded trace is remembered so a
    later diff lease naming the same digest never re-ships it.
    """
    from repro.exec.workerstate import worker_state

    state = worker_state()
    ship = bool(payload.get("ship", True))
    outcomes: list[dict] = []
    parts: list[bytes] = []
    for task in payload["tasks"]:
        func = resolve_callable(task.func)
        started = time.perf_counter()
        captured = trace_call(func, *task.args, name=task.name,
                              filter=task.filter,
                              record_fields=task.record_fields,
                              key_table=state.ingest_table(),
                              **task.kwargs)
        seconds = time.perf_counter() - started
        state.captures += 1
        try:
            digest = captured.trace.content_digest()
        except Exception:  # noqa: BLE001 - digests are an optimisation
            digest = ""
        blob = state.cached_wire(digest) if digest else None
        if blob is None:
            blob = dumps_trace_bytes(captured.trace)
            if digest:
                state.remember_wire(digest, blob)
        if digest:
            # A later diff lease naming this digest will find the
            # decoded trace already resident — the capture was the
            # trace's one and only boundary crossing for this worker.
            state.remember_trace(digest, captured.trace)
        error = None
        if captured.error is not None:
            error = (type(captured.error).__name__, str(captured.error))
        outcomes.append({"trace": blob, "result":
                         _picklable_or_none(captured.result),
                         "error": error, "seconds": seconds,
                         "pid": os.getpid(), "digest": digest})
        parts.append(blob)
    segment = None
    combined = b"".join(parts)
    if ship and len(combined) >= shm.SHIP_MIN_BYTES:
        shipped = ship_untracked(combined, payload["prefix"])
        if shipped is not None:
            segment = shipped
            offset = 0
            for outcome, blob in zip(outcomes, parts):
                outcome["trace"] = {"off": offset, "len": len(blob)}
                offset += len(blob)
        # else: shared memory refused — outcomes keep their inline
        # bytes; identical results, just wire cost.
    return {"outcomes": outcomes, "segment": segment,
            "counters": state.counters()}


def _decode_outcome(task: CaptureTask, wire: dict,
                    key_table: KeyTable | None,
                    keepalive=None) -> CaptureOutcome:
    """Wire dict -> outcome, re-homing the trace's carried key column
    into ``key_table`` so every trace of a session shares one id
    space.  Binary v3 payloads decode lazily — a zero-copy view over
    the lease's mapped segment, pinned by ``keepalive``; only the key
    column is touched here."""
    trace = loads_trace(wire["trace"], keepalive=keepalive)
    if key_table is not None and trace.key_table is not None \
            and trace.key_ids is not None:
        trace.key_ids = key_table.translate(trace.key_table.keys(),
                                            trace.key_ids)
        trace.key_table = key_table
    error = None
    if wire["error"] is not None:
        error = RemoteCaptureError(*wire["error"])
    return CaptureOutcome(
        name=task.name,
        trace=trace,
        result=wire["result"],
        error=error,
        seconds=wire["seconds"],
        worker=f"pid:{wire['pid']}",
    )


def capture_task_locally(task: CaptureTask,
                         key_table: KeyTable | None = None
                         ) -> CaptureOutcome:
    """Evaluate one capture task in this process, under
    :data:`CAPTURE_LOCK`."""
    func = resolve_callable(task.func)
    started = time.perf_counter()
    with CAPTURE_LOCK:
        captured = trace_call(func, *task.args, name=task.name,
                              filter=task.filter,
                              record_fields=task.record_fields,
                              key_table=key_table,
                              **task.kwargs)
    return CaptureOutcome(
        name=task.name,
        trace=captured.trace,
        result=captured.result,
        error=captured.error,
        seconds=time.perf_counter() - started,
        worker=f"thread:{threading.current_thread().name}",
    )


def run_capture_tasks(tasks: Sequence[CaptureTask],
                      executor: "Executor | str | None" = None,
                      *, key_table: KeyTable | None = None
                      ) -> list[CaptureOutcome]:
    """Evaluate a batch of capture tasks through an executor.

    Outcomes keep task order.  ``key_table`` is the caller's ingest
    table: in-process captures intern straight into it; process
    captures intern into a worker-local table whose column is
    translated into ``key_table`` on arrival.

    Pass an executor *instance* to amortise one pool across batches; a
    name spec constructs a pool for this batch and closes it after.
    """
    tasks = list(tasks)
    executor, owned = resolve_executor(executor)
    try:
        if executor.in_process:
            return executor.map(
                lambda task: capture_task_locally(task, key_table), tasks)
        for task in tasks:
            ensure_portable(task)
        return _run_capture_leases(tasks, executor, key_table)
    finally:
        if owned:
            executor.close()


def _run_capture_leases(tasks: Sequence[CaptureTask], executor: Executor,
                        key_table: KeyTable | None) -> list[CaptureOutcome]:
    """Dispatch capture tasks to a process executor as leases (one
    round trip per chunk, traces home through shared memory).

    The parent adopts — and immediately unlink-names — each lease's
    segment as a **zero-copy view**: v3 traces decode lazily straight
    off the mapping (no copy of the payload is ever made), and the
    mapping itself lives exactly as long as the decoded traces that
    reference it.  Any exception (a broken pool, an interrupt) triggers
    a prefix sweep that collects segments whose producer died mid-ship.
    """
    registry = parent_registry()
    registry.sweep()   # collect leftovers from any earlier crashed batch
    workers = getattr(executor, "max_workers", None) or 1
    chunks = lease_chunks(list(enumerate(tasks)), workers)
    ship = shm_available()
    payloads = [{"tasks": [task for _, task in chunk],
                 "prefix": registry.prefix, "ship": ship}
                for chunk in chunks]
    outcomes: "list[CaptureOutcome | None]" = [None] * len(tasks)
    try:
        for chunk, lease in zip(chunks, executor.map(run_capture_lease,
                                                     payloads)):
            blob = b""
            keepalive = None
            if lease["segment"] is not None:
                name, size = lease["segment"]
                blob, keepalive = adopt_segment_view(name, size,
                                                     registry=registry)
            for (index, task), wire in zip(chunk, lease["outcomes"]):
                frame = wire["trace"]
                if isinstance(frame, dict):
                    wire["trace"] = blob[frame["off"]:
                                         frame["off"] + frame["len"]]
                outcomes[index] = _decode_outcome(task, wire, key_table,
                                                  keepalive=keepalive)
    except BaseException:
        registry.sweep()
        raise
    return outcomes


def capture_call(func: "Callable | str", *args,
                 name: str = "",
                 filter: TraceFilter | None = None,
                 record_fields: bool = True,
                 key_table: KeyTable | None = None,
                 executor: "Executor | str | None" = None,
                 **kwargs) -> CaptureResult:
    """One-shot: :func:`repro.capture.tracer.trace_call` semantics,
    routed through the execution layer (the executor decides whether
    the capture runs under the lock or in a worker process)."""
    task = CaptureTask(func=func, args=args, kwargs=kwargs, name=name,
                       filter=filter, record_fields=record_fields)
    outcome = run_capture_tasks([task], executor, key_table=key_table)[0]
    return outcome.capture_result()
