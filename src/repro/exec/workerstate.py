"""Per-worker-process state for the warm execution substrate.

A warm :class:`~repro.exec.executors.ProcessExecutor` keeps its workers
alive across batches, which makes *worker-resident caches* worth
having.  Each worker process owns exactly one :class:`WorkerState`
(module-level, materialised on first use after the fork/spawn):

* ``key_table`` — the worker's ingest-time ``=e`` symbol table, reused
  across every capture the worker runs, so a repeated scenario interns
  into a warm dict instead of rebuilding a table per task;
* ``trace_cache`` — decoded traces memoised by content digest.  Diff
  chunks ship traces as shared-memory handles; a worker that has
  already decoded a digest never attaches (let alone re-parses) the
  segment again — a trace crosses the process boundary *at most once
  per worker*;
* ``wire_cache`` — the mirror memo for wire *bytes* a worker itself
  produced (capture leases re-shipping an identical trace skip the
  re-encode; bytes are produced exactly once, never re-encoded from
  text per send);
* counters — captures and diff jobs run, cache hits, shared-memory
  bytes read — which ride back to the parent in lease results and feed
  the executor's ``stats()`` (and from there the service's
  ``/v1/stats`` workers row).

Everything here also works in the parent process (the serial fallback
paths call the same resolve helpers); state is keyed by pid, so a
forked worker that inherited the parent's module state lazily replaces
it with its own on first touch.
"""

from __future__ import annotations

import os
from collections import OrderedDict

from repro.core.keytable import KeyTable
from repro.exec.shm import (TraceShippingError, adopt_segment_bytes,
                            adopt_segment_view)

__all__ = ["WorkerState", "resolve_trace_handle", "resolve_wire_payload",
           "resolve_wire_text", "worker_state"]

#: Decoded traces kept per worker (digests evict LRU past this).
TRACE_CACHE_CAPACITY = 16

#: Worker key tables are reset past this many distinct keys (a bound on
#: long-lived warm workers ingesting many unrelated scenarios).
KEY_TABLE_CAPACITY = 250_000


class WorkerState:
    """One worker process's caches and counters (see module doc)."""

    def __init__(self):
        self.pid = os.getpid()
        self.key_table = KeyTable()
        self.trace_cache: "OrderedDict[str, object]" = OrderedDict()
        self.wire_cache: "OrderedDict[str, bytes]" = OrderedDict()
        self.captures = 0
        self.diff_jobs = 0
        self.cache_hits = 0
        self.shm_bytes_in = 0

    # -- caches --------------------------------------------------------------

    def ingest_table(self) -> KeyTable:
        """The worker's capture-time key table (reset when it outgrows
        :data:`KEY_TABLE_CAPACITY` — correctness is unaffected, the
        wire format re-expresses columns file-locally anyway)."""
        if len(self.key_table) > KEY_TABLE_CAPACITY:
            self.key_table = KeyTable()
        return self.key_table

    def cached_trace(self, digest: str):
        trace = self.trace_cache.get(digest)
        if trace is not None:
            self.trace_cache.move_to_end(digest)
            self.cache_hits += 1
        return trace

    def remember_trace(self, digest: str, trace) -> None:
        self.trace_cache[digest] = trace
        self.trace_cache.move_to_end(digest)
        while len(self.trace_cache) > TRACE_CACHE_CAPACITY:
            self.trace_cache.popitem(last=False)

    def remember_wire(self, digest: str, payload: bytes) -> None:
        self.wire_cache[digest] = payload
        self.wire_cache.move_to_end(digest)
        while len(self.wire_cache) > TRACE_CACHE_CAPACITY:
            self.wire_cache.popitem(last=False)

    def cached_wire(self, digest: str) -> "bytes | None":
        payload = self.wire_cache.get(digest)
        if payload is not None:
            self.wire_cache.move_to_end(digest)
        return payload

    def counters(self) -> dict:
        return {"pid": self.pid, "captures": self.captures,
                "diff_jobs": self.diff_jobs,
                "cache_hits": self.cache_hits,
                "shm_bytes_in": self.shm_bytes_in}


_state: WorkerState | None = None


def worker_state() -> WorkerState:
    """This process's :class:`WorkerState` (fork-safe: a child that
    inherited the parent's builds its own on first touch)."""
    global _state
    if _state is None or _state.pid != os.getpid():
        _state = WorkerState()
    return _state


def _inline_payload(handle: dict) -> "bytes | str":
    """The inline handle's payload — ``data`` bytes (current wire) or
    legacy ``text`` (older parents mid-rolling-restart)."""
    data = handle.get("data")
    if data is not None:
        return data
    return handle["text"]


def resolve_wire_payload(handle: dict, state: "WorkerState | None" = None
                         ) -> "tuple[bytes | str | memoryview, object]":
    """A ship handle -> ``(wire payload, keepalive)``.

    ``inline`` handles carry the payload itself (``keepalive`` None);
    ``shm`` handles are attached read-only (the producer's registry
    owns the unlink) and returned as a **zero-copy** ``memoryview``
    over the mapped buffer, pinned by the keepalive — pass both to
    ``loads_trace`` and a binary v3 trace decodes in place, never
    copying the segment.  Raises
    :class:`~repro.exec.shm.TraceShippingError` when a segment has
    vanished — callers fall back to inline re-ships.
    """
    kind = handle.get("kind", "inline")
    if kind == "inline":
        return _inline_payload(handle), None
    if kind != "shm":
        raise TraceShippingError(f"unknown ship handle kind {kind!r}")
    view, keepalive = adopt_segment_view(handle["name"], handle["len"],
                                         unlink=False)
    if state is not None:
        state.shm_bytes_in += len(view)
    return view, keepalive


def resolve_wire_text(handle: dict, state: "WorkerState | None" = None
                      ) -> str:
    """A ship handle -> wire *text* (v1/v2 payloads only; the binary v3
    wire has no text form — use :func:`resolve_wire_payload`)."""
    kind = handle.get("kind", "inline")
    if kind == "inline":
        payload = _inline_payload(handle)
        if isinstance(payload, str):
            return payload
        return bytes(payload).decode("utf-8")
    if kind != "shm":
        raise TraceShippingError(f"unknown ship handle kind {kind!r}")
    payload = adopt_segment_bytes(handle["name"], handle["len"],
                                  unlink=False)
    if state is not None:
        state.shm_bytes_in += len(payload)
    return payload.decode("utf-8")


def resolve_trace_handle(handle: dict):
    """A ship handle -> a decoded :class:`~repro.core.traces.Trace`,
    memoised per worker by content digest (the at-most-once-per-worker
    guarantee).  Shared-memory v3 payloads decode lazily straight off
    the mapped segment; the memo then pins the mapping for the warm
    worker's cache lifetime."""
    from repro.analysis.serialize import loads_trace

    state = worker_state()
    digest = handle.get("digest")
    if digest:
        trace = state.cached_trace(digest)
        if trace is not None:
            return trace
    payload, keepalive = resolve_wire_payload(handle, state)
    trace = loads_trace(payload, keepalive=keepalive)
    if digest:
        state.remember_trace(digest, trace)
    return trace
