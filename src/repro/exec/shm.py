"""Zero-copy trace shipping over ``multiprocessing.shared_memory``.

Process executors used to ship every trace as serialisation-v2 *text
pickled through the task queue*: the text was copied into the pickle
stream, through the pipe, and out again on the far side — three copies
of half a megabyte per trace, per round trip.  This module ships the
same v2 wire bytes through named shared-memory segments instead: the
producer writes the bytes once, the consumer maps the segment and
decodes straight from a :class:`memoryview` slice, and only a tiny
*handle* (segment name, offset, length, content digest) rides the
queue.

Three guarantees shape the design:

* **Transparent fallback** — when ``multiprocessing.shared_memory`` is
  unavailable (platform, permissions, an exhausted ``/dev/shm``), every
  ship call degrades to an ``inline`` handle carrying the wire text
  itself.  Consumers never know the difference; results are identical.
* **Guaranteed unlink** — every segment this process creates is named
  with a per-process prefix and tracked by a :class:`SegmentRegistry`.
  Segments are unlinked on normal release, on pool close, at
  interpreter exit (``atexit``), and — because names are prefixed —
  :meth:`SegmentRegistry.sweep` can collect orphans left by a crashed
  or interrupted worker by globbing ``/dev/shm``.
* **At most one crossing per worker** — handles carry the trace's
  content digest, so the worker side (:mod:`repro.exec.workerstate`)
  memoises decoded traces per pid and never re-attaches a segment it
  has already decoded.

The registry also keeps the shipping statistics (segments created,
bytes shipped in either direction) that ``repro serve`` surfaces in its
``/v1/stats`` workers row.
"""

from __future__ import annotations

import atexit
import os
import threading
from pathlib import Path

__all__ = [
    "SegmentRegistry", "TraceShippingError", "adopt_segment_bytes",
    "adopt_segment_view", "parent_registry", "shm_available", "shm_stats",
]

#: Where POSIX shared memory surfaces as files (the sweep path).  On
#: platforms without it the registry still unlinks everything it
#: tracks; only orphan *sweeping* needs the directory.
SHM_DIR = Path("/dev/shm")

#: Force the inline fallback everywhere (tests, and an escape hatch for
#: platforms where shared memory exists but misbehaves).
FORCE_INLINE = False

#: Below this combined payload size a lease ships its traces inline
#: through the result pipe instead of a shared-memory segment.  A
#: segment costs two syscall round-trips (create+unlink) plus an mmap
#: on each side; for payloads this small the pipe copy is cheaper, and
#: binary v3 still decodes lazily over the pickled bytes.  Tune via
#: ``REPRO_SHM_SHIP_MIN`` (bytes; 0 ships everything).
SHIP_MIN_BYTES = int(os.environ.get("REPRO_SHM_SHIP_MIN", str(64 * 1024)))

_shm_probe_lock = threading.Lock()
_shm_probe: "bool | None" = None


class TraceShippingError(RuntimeError):
    """A shared-memory handle could not be resolved (segment evicted,
    unlinked by a racing cleanup, or the platform refused the attach).
    Callers fall back to inline shipping or inline execution."""


def _shared_memory_module():
    """The ``shared_memory`` module, or ``None`` when unimportable or
    disabled (tests monkeypatch this away to exercise the fallback)."""
    if FORCE_INLINE:
        return None
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - platform without shm
        return None
    return shared_memory


def shm_available() -> bool:
    """Whether shared-memory shipping works here (probed once: the
    module may import fine yet creation fail on locked-down hosts)."""
    global _shm_probe
    if FORCE_INLINE:
        return False
    with _shm_probe_lock:
        if _shm_probe is None:
            module = _shared_memory_module()
            if module is None:
                _shm_probe = False
            else:
                try:
                    probe = module.SharedMemory(create=True, size=16)
                    probe.close()
                    probe.unlink()
                    _shm_probe = True
                except (OSError, ValueError):  # pragma: no cover
                    _shm_probe = False
        return _shm_probe


def _untrack(name: str) -> None:
    """Detach ``name`` from multiprocessing's resource tracker.

    The :class:`SegmentRegistry` owns segment lifecycles outright
    (deliberate unlink + prefix sweep); leaving segments registered
    with the tracker as well means double unlinks and noisy "leaked
    shared_memory" warnings when the *other* side of a ship is the one
    that cleans up.  Best-effort: tracker internals are private."""
    try:  # pragma: no cover - depends on CPython internals
        from multiprocessing import resource_tracker
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # noqa: BLE001 - tracker variance is harmless
        pass


class SegmentRegistry:
    """Tracks every shared-memory segment this process creates or
    adopts, with refcounts and guaranteed unlink.

    ``prefix`` namespaces the segment names; the parent's registry
    passes its prefix to workers so *their* segments are sweepable by
    the parent even if the worker dies before handing the name back.
    """

    def __init__(self, prefix: str | None = None):
        self.prefix = prefix or f"reproshm{os.getpid():x}"
        self._lock = threading.Lock()
        self._segments: dict[str, object] = {}    # name -> SharedMemory
        self._refs: dict[str, int] = {}
        self._by_digest: dict[str, str] = {}      # content digest -> name
        self._counter = 0
        self.segments_created = 0
        self.bytes_shipped = 0
        self.bytes_received = 0
        self.sweeps = 0

    # -- creation ------------------------------------------------------------

    def _next_name(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self.prefix}_{os.getpid():x}_{self._counter:x}"

    def create(self, payload: bytes, *, digest: str | None = None
               ) -> "str | None":
        """Write ``payload`` into a fresh tracked segment; returns its
        name, or ``None`` when shared memory is unavailable (callers
        then ship inline).  ``digest`` keys the segment for reuse: a
        second ship of the same content returns the existing segment —
        one copy of a trace per process, however many diffs ship it."""
        if digest is not None:
            with self._lock:
                name = self._by_digest.get(digest)
                if name is not None and name in self._segments:
                    self._refs[name] += 1
                    return name
        if not shm_available():
            return None
        module = _shared_memory_module()
        name = self._next_name()
        try:
            segment = module.SharedMemory(name=name, create=True,
                                          size=max(1, len(payload)))
        except (OSError, ValueError):  # pragma: no cover - shm exhausted
            return None
        _untrack(name)
        segment.buf[:len(payload)] = payload
        with self._lock:
            self._segments[name] = segment
            self._refs[name] = 1
            if digest is not None:
                self._by_digest[digest] = name
            self.segments_created += 1
            self.bytes_shipped += len(payload)
        return name

    # -- release -------------------------------------------------------------

    def release(self, name: str) -> None:
        """Drop one reference; the segment is unlinked when the last
        reference goes."""
        with self._lock:
            if name not in self._segments:
                return
            self._refs[name] -= 1
            if self._refs[name] > 0:
                return
            segment = self._segments.pop(name)
            self._refs.pop(name, None)
            for digest, seg_name in list(self._by_digest.items()):
                if seg_name == name:
                    del self._by_digest[digest]
        _destroy(segment)

    def release_all(self) -> None:
        """Unlink every tracked segment (pool close, interpreter
        exit)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._refs.clear()
            self._by_digest.clear()
        for segment in segments:
            _destroy(segment)

    def sweep(self) -> int:
        """Unlink orphaned segments: ``/dev/shm`` entries carrying this
        registry's prefix that no live tracked segment owns.  Collects
        what a crashed worker or an interrupted batch left behind;
        returns the number collected.  No-op where the sweep directory
        does not exist."""
        if not SHM_DIR.is_dir():
            return 0
        with self._lock:
            live = set(self._segments)
        collected = 0
        for path in SHM_DIR.glob(f"{self.prefix}_*"):
            if path.name in live:
                continue
            try:
                path.unlink()
                collected += 1
            except OSError:  # pragma: no cover - raced another cleanup
                pass
        if collected:
            with self._lock:
                self.sweeps += 1
        return collected

    # -- introspection -------------------------------------------------------

    def tracked(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._segments)

    def stats(self) -> dict:
        with self._lock:
            return {
                "segments_live": len(self._segments),
                "segments_created": self.segments_created,
                "bytes_shipped": self.bytes_shipped,
                "bytes_received": self.bytes_received,
                "sweeps": self.sweeps,
            }


def _retrack(name: str) -> None:
    """Re-register ``name`` with the resource tracker immediately
    before an unlink.  ``SharedMemory.unlink`` unconditionally sends an
    unregister message, and the tracker prints a ``KeyError`` traceback
    for names it is not holding — which is every registry segment,
    because :func:`_untrack` detached them at creation.  Registering
    right before the unlink makes the tracker's books balance exactly.
    Best-effort, mirroring :func:`_untrack`."""
    try:  # pragma: no cover - depends on CPython internals
        from multiprocessing import resource_tracker
        resource_tracker.register(f"/{name}", "shared_memory")
    except Exception:  # noqa: BLE001 - tracker variance is harmless
        pass


def _destroy(segment) -> None:
    try:
        segment.close()
    except (OSError, BufferError):  # pragma: no cover - mapped views
        pass
    _retrack(segment.name)
    try:
        segment.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover - already gone
        # unlink raised before its own unregister ran; detach the name
        # again so the tracker does not try to clean it at exit.
        _untrack(segment.name)


def adopt_segment_bytes(name: str, length: int, *,
                        registry: "SegmentRegistry | None" = None,
                        unlink: bool = True) -> bytes:
    """Attach a segment created by the *other* side of a ship, copy its
    payload out, and (by default) unlink it — the adopt-and-consume
    path for worker-produced capture results.  Raises
    :class:`TraceShippingError` when the segment is gone."""
    module = _shared_memory_module()
    if module is None:
        raise TraceShippingError(f"shared memory unavailable; cannot "
                                 f"attach segment {name!r}")
    try:
        segment = module.SharedMemory(name=name)
    except (OSError, ValueError) as exc:
        raise TraceShippingError(
            f"cannot attach shared-memory segment {name!r}: {exc}"
        ) from None
    _untrack(name)
    try:
        payload = bytes(memoryview(segment.buf)[:length])
    finally:
        if unlink:
            _destroy(segment)
        else:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
    if registry is not None:
        with registry._lock:
            registry.bytes_received += len(payload)
    return payload


class _SegmentKeepalive:
    """Pins a mapped segment for the lifetime of zero-copy views.

    :func:`adopt_segment_view` hands decoders raw ``memoryview``s over
    the mapping; POSIX keeps an *unlinked* segment's memory alive while
    any mapping exists, so unlink can happen eagerly and the map is
    freed by refcount when the last view (and this keepalive) goes.
    ``close()`` is deliberately tolerant: while derived views are still
    alive the ``BufferError`` from ``SharedMemory.close`` is expected —
    the mmap is released when those views die.
    """

    __slots__ = ("_segment",)

    def __init__(self, segment):
        self._segment = segment

    def close(self) -> None:
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
            return
        except OSError:  # pragma: no cover - platform close variance
            return
        except BufferError:
            pass
        # Views outlive us.  Hand the mapping's lifetime to them: every
        # exported view holds a reference to the mmap object, which
        # unmaps on its own dealloc when the last view dies.  Drop the
        # segment's references so its finalizer does not retry the
        # close (an unraisable BufferError), and close the fd here so
        # it never leaks.
        try:
            if segment._buf is not None:
                segment._buf.release()
        except (AttributeError, BufferError):  # pragma: no cover
            pass
        segment._buf = None
        segment._mmap = None
        fd = getattr(segment, "_fd", -1)
        if isinstance(fd, int) and fd >= 0:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
            segment._fd = -1

    def __del__(self):  # pragma: no cover - GC timing
        self.close()


def adopt_segment_view(name: str, length: int, *,
                       registry: "SegmentRegistry | None" = None,
                       unlink: bool = True,
                       ) -> "tuple[memoryview, _SegmentKeepalive]":
    """Attach a segment and expose its payload **without copying**:
    returns ``(view, keepalive)`` where ``view`` is a ``memoryview`` of
    the first ``length`` bytes of the mapping and ``keepalive`` pins
    the mapping (pass it to ``loads_trace(view, keepalive=...)`` so the
    decoded trace owns it).  The segment name is unlinked immediately
    by default — the memory itself lives until the last view dies.
    Raises :class:`TraceShippingError` when the segment is gone."""
    module = _shared_memory_module()
    if module is None:
        raise TraceShippingError(f"shared memory unavailable; cannot "
                                 f"attach segment {name!r}")
    try:
        segment = module.SharedMemory(name=name)
    except (OSError, ValueError) as exc:
        raise TraceShippingError(
            f"cannot attach shared-memory segment {name!r}: {exc}"
        ) from None
    _untrack(name)
    if unlink:
        _retrack(name)
        try:
            segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - raced
            _untrack(name)
    view = memoryview(segment.buf)[:length]
    if registry is not None:
        with registry._lock:
            registry.bytes_received += length
    return view, _SegmentKeepalive(segment)


_ship_counter_lock = threading.Lock()
_ship_counter = 0


def ship_untracked(payload: bytes, prefix: str) -> "tuple[str, int] | None":
    """Write ``payload`` to a fresh segment whose *ownership transfers
    with the handle*: the producer (a capture worker) forgets it
    immediately, the consumer (the parent) adopts and unlinks it via
    :func:`adopt_segment_bytes`.  Named under the consumer's
    ``prefix`` so an orphan — producer crashed after the write, or the
    batch was interrupted before the adopt — is collected by the
    consumer's :meth:`SegmentRegistry.sweep`.  Returns ``(name, size)``
    or ``None`` when shared memory is unavailable."""
    global _ship_counter
    if not shm_available():
        return None
    module = _shared_memory_module()
    with _ship_counter_lock:
        _ship_counter += 1
        name = f"{prefix}_{os.getpid():x}_w{_ship_counter:x}"
    try:
        segment = module.SharedMemory(name=name, create=True,
                                      size=max(1, len(payload)))
    except (OSError, ValueError):  # pragma: no cover - shm exhausted
        return None
    _untrack(name)
    segment.buf[:len(payload)] = payload
    try:
        segment.close()
    except (OSError, BufferError):  # pragma: no cover
        pass
    return name, len(payload)


#: The parent-side registry of this process (created on first use).
_parent_registry: SegmentRegistry | None = None
_parent_lock = threading.Lock()


def parent_registry() -> SegmentRegistry:
    """This process's segment registry (one per process, atexit-
    cleaned)."""
    global _parent_registry
    with _parent_lock:
        if _parent_registry is None:
            _parent_registry = SegmentRegistry()
            atexit.register(_parent_registry.release_all)
        return _parent_registry


def shm_stats() -> dict:
    """Shipping statistics of this process's registry (zeros before
    first use — the service's /stats must not *create* a registry)."""
    with _parent_lock:
        if _parent_registry is None:
            return SegmentRegistry(prefix="unused").stats()
    return _parent_registry.stats()
