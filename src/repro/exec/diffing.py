"""Diff execution over the executor layer.

The views-based diff is split (in :mod:`repro.core.view_diff`) into a
*planning* phase — build webs, intern columns, correlate views,
enumerate the correlated thread pairs — and an embarrassingly parallel
*execution* phase that evaluates each pair independently.  This module
routes the execution phase through an :class:`~repro.exec.executors.Executor`:

* serial — the plain :func:`~repro.core.view_diff.view_diff` path;
* threads — pair evaluations fan out across the pool, sharing the
  in-memory webs and window-key caches;
* processes — both traces are shipped once per worker chunk as
  serialisation-v2 text; each worker rebuilds the (deterministic) plan
  locally, evaluates its contiguous chunk of thread pairs, and sends
  the pair marks back.  The parent merges all marks in plan order.

Every route merges through :meth:`ViewDiffPlan.merge`, so the result is
bit-identical to the serial evaluation — similarity sets, match and
anchor pairs, sequences, and compare totals (property-tested in
``tests/test_exec_diffing.py``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.analysis.serialize import dumps_trace, loads_trace
from repro.core.diffs import DiffResult
from repro.core.keytable import KeyTable
from repro.core.lcs import OpCounter
from repro.core.traces import Trace
from repro.core.view_diff import (PairMarks, ViewDiffConfig, ViewDiffPlan,
                                  view_diff)
from repro.exec.executors import Executor, chunk_evenly, resolve_executor


#: Content-digest-keyed memo of trace wire texts: a batch re-diffing
#: the same traces (the pipeline's jobs, warm cache-miss re-runs) ships
#: each trace's serialisation without re-encoding it every diff.  Tiny
#: and process-local — the capacity bounds memory, the digest key makes
#: it safe to share across every executor-driven diff of the process
#: (equal content, equal plan marks; trace names/metadata never reach
#: the marks the workers send back).
_WIRE_MEMO_CAPACITY = 8
_wire_memo: "OrderedDict[str, str]" = OrderedDict()
_wire_memo_lock = threading.Lock()


def _trace_wire(trace: Trace) -> str:
    """``dumps_trace`` memoised by :meth:`Trace.content_digest`."""
    digest = trace.content_digest()
    with _wire_memo_lock:
        text = _wire_memo.get(digest)
        if text is not None:
            _wire_memo.move_to_end(digest)
            return text
    text = dumps_trace(trace)
    with _wire_memo_lock:
        _wire_memo[digest] = text
        _wire_memo.move_to_end(digest)
        while len(_wire_memo) > _WIRE_MEMO_CAPACITY:
            _wire_memo.popitem(last=False)
    return text


def run_diff_chunk_worker(payload: tuple) -> list[PairMarks]:
    """Evaluate one chunk of correlated thread pairs in a worker.

    ``payload`` is ``(left_text, right_text, config, pairs)`` — both
    traces as v2 wire text (key tables included, so the worker interns
    nothing at ingest).  The worker's plan is rebuilt locally; planning
    (correlation, interning) is deterministic, so its pair marks are
    exactly the ones the parent's plan would have produced.
    """
    left_text, right_text, config, pairs = payload
    plan = ViewDiffPlan(loads_trace(left_text), loads_trace(right_text),
                        config=config)
    return [plan.run_pair(pair) for pair in pairs]


def executed_view_diff(left: Trace, right: Trace, *,
                       config: ViewDiffConfig | None = None,
                       counter: OpCounter | None = None,
                       key_table: KeyTable | None = None,
                       executor: "Executor | str | None" = None
                       ) -> DiffResult:
    """Views-based diff with the execution phase run by ``executor``.

    Results are bit-identical to :func:`~repro.core.view_diff.view_diff`
    for every executor; only wall-clock distribution changes.  As with
    capture batches, a name spec builds a pool for this one diff and
    closes it after; pass an instance to amortise.
    """
    executor, owned = resolve_executor(executor)
    try:
        if executor.in_process:
            return view_diff(left, right, config=config, counter=counter,
                             key_table=key_table,
                             executor=None if executor.name == "serial"
                             else executor)
        started = time.perf_counter()
        plan = ViewDiffPlan(left, right, config=config,
                            key_table=key_table)
        if len(plan.pairs) <= 1:
            # Nothing to distribute — shipping both traces to a worker
            # would only add wire cost.
            marks = [plan.run_pair(pair) for pair in plan.pairs]
            return plan.merge(marks, counter=counter, started=started)
        chunks = chunk_evenly(plan.pairs,
                              getattr(executor, "max_workers", 1))
        left_text = _trace_wire(left)
        right_text = _trace_wire(right)
        payloads = [(left_text, right_text, plan.config, chunk)
                    for chunk in chunks]
        marks = [mark for chunk_marks in
                 executor.map(run_diff_chunk_worker, payloads)
                 for mark in chunk_marks]
        return plan.merge(marks, counter=counter, started=started)
    finally:
        if owned:
            executor.close()
