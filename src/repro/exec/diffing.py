"""Diff execution over the executor layer.

The views-based diff is split (in :mod:`repro.core.view_diff`) into a
*planning* phase — build webs, intern columns, correlate views,
enumerate the correlated thread pairs — and an embarrassingly parallel
*execution* phase that evaluates each pair independently.  This module
routes the execution phase through an :class:`~repro.exec.executors.Executor`:

* serial — the plain :func:`~repro.core.view_diff.view_diff` path;
* threads — pair evaluations fan out across the pool, sharing the
  in-memory webs and window-key caches;
* processes — both traces are shipped once per *distinct trace* as a
  digest-keyed shared-memory segment of wire bytes (binary v3 by
  default; inline bytes when shared memory is unavailable); each
  worker rebuilds the (deterministic) plan locally — decoding lazily
  and zero-copy off the mapped segment, memoised per pid, so a warm
  worker re-reads nothing — evaluates its contiguous chunk of thread
  pairs, and sends the pair marks back.  The parent merges all marks
  in plan order.

Every route merges through :meth:`ViewDiffPlan.merge`, so the result is
bit-identical to the serial evaluation — similarity sets, match and
anchor pairs, sequences, and compare totals (property-tested in
``tests/test_exec_diffing.py``).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from collections import OrderedDict

from repro.analysis.serialize import dumps_trace_bytes
from repro.core.anchors import AnchorConfig, merge_segment_results, segment_pair
from repro.core.diffs import DiffResult, result_from_wire, result_to_wire
from repro.core.keytable import KeyTable
from repro.core.lcs import MemoryBudget, OpCounter
from repro.core.traces import Trace
from repro.core.view_diff import (PairMarks, ViewDiffConfig, ViewDiffPlan,
                                  view_diff)
from repro.exec.executors import Executor, chunk_evenly, resolve_executor
from repro.exec.shm import TraceShippingError, parent_registry, shm_available
from repro.exec.workerstate import resolve_trace_handle, worker_state


#: Content-digest-keyed memo of trace wire *bytes*: a batch re-diffing
#: the same traces (the pipeline's jobs, warm cache-miss re-runs) ships
#: each trace's serialisation without re-encoding it every diff — the
#: bytes are produced exactly once and reused verbatim for segment
#: writes and inline handles alike.  Tiny and process-local — the
#: capacity bounds memory, the digest key makes it safe to share
#: across every executor-driven diff of the process (equal content,
#: equal plan marks; trace names/metadata never reach the marks the
#: workers send back).
_WIRE_MEMO_CAPACITY = 8
_wire_memo: "OrderedDict[str, bytes]" = OrderedDict()
_wire_memo_lock = threading.Lock()


def _trace_wire(trace: Trace) -> bytes:
    """``dumps_trace_bytes`` memoised by :meth:`Trace.content_digest`."""
    digest = trace.content_digest()
    with _wire_memo_lock:
        blob = _wire_memo.get(digest)
        if blob is not None:
            _wire_memo.move_to_end(digest)
            return blob
    blob = dumps_trace_bytes(trace)
    with _wire_memo_lock:
        _wire_memo[digest] = blob
        _wire_memo.move_to_end(digest)
        while len(_wire_memo) > _WIRE_MEMO_CAPACITY:
            _wire_memo.popitem(last=False)
    return blob


def _ship_trace(trace: Trace, shipped: list[str], *,
                inline: bool = False) -> dict:
    """Build a ship *handle* for ``trace``.

    The preferred handle names a shared-memory segment in the parent's
    registry — digest-keyed, so every diff of the same trace in flight
    shares one segment, and refcounted, with each name appended to
    ``shipped`` for release once the batch lands.  Falls back to (or is
    forced onto, via ``inline=True``) a handle carrying the wire bytes
    themselves.  Workers resolve either kind through
    :func:`~repro.exec.workerstate.resolve_trace_handle`, memoised per
    pid by the digest — a warm worker re-reads nothing.
    """
    digest = trace.content_digest()
    blob = _trace_wire(trace)
    if not inline and shm_available():
        name = parent_registry().create(blob, digest=digest)
        if name is not None:
            shipped.append(name)
            return {"kind": "shm", "name": name, "len": len(blob),
                    "digest": digest}
    return {"kind": "inline", "data": blob, "digest": digest}


def _release_shipped(shipped: list[str]) -> None:
    registry = parent_registry()
    for name in shipped:
        registry.release(name)
    shipped.clear()


def run_diff_chunk_worker(payload: tuple) -> list[PairMarks]:
    """Evaluate one chunk of correlated thread pairs in a worker.

    ``payload`` is ``(left_handle, right_handle, config, pairs)`` —
    both traces as ship handles (shared-memory segment or inline wire
    bytes; key tables ride inside, so the worker interns nothing at
    ingest).  The worker's plan is rebuilt locally; planning
    (correlation, interning) is deterministic, so its pair marks are
    exactly the ones the parent's plan would have produced.
    """
    left_handle, right_handle, config, pairs = payload
    state = worker_state()
    state.diff_jobs += len(pairs)
    plan = ViewDiffPlan(resolve_trace_handle(left_handle),
                        resolve_trace_handle(right_handle),
                        config=config)
    return [plan.run_pair(pair) for pair in pairs]


def executed_view_diff(left: Trace, right: Trace, *,
                       config: ViewDiffConfig | None = None,
                       counter: OpCounter | None = None,
                       key_table: KeyTable | None = None,
                       executor: "Executor | str | None" = None
                       ) -> DiffResult:
    """Views-based diff with the execution phase run by ``executor``.

    Results are bit-identical to :func:`~repro.core.view_diff.view_diff`
    for every executor; only wall-clock distribution changes.  As with
    capture batches, a name spec builds a pool for this one diff and
    closes it after; pass an instance to amortise.
    """
    executor, owned = resolve_executor(executor)
    try:
        if executor.in_process:
            return view_diff(left, right, config=config, counter=counter,
                             key_table=key_table,
                             executor=None if executor.name == "serial"
                             else executor)
        started = time.perf_counter()
        plan = ViewDiffPlan(left, right, config=config,
                            key_table=key_table)
        if len(plan.pairs) <= 1:
            # Nothing to distribute — shipping both traces to a worker
            # would only add wire cost.
            marks = [plan.run_pair(pair) for pair in plan.pairs]
            return plan.merge(marks, counter=counter, started=started)
        chunks = chunk_evenly(plan.pairs,
                              getattr(executor, "max_workers", 1))
        shipped: list[str] = []
        try:
            handles = (_ship_trace(left, shipped),
                       _ship_trace(right, shipped))
            payloads = [(handles[0], handles[1], plan.config, chunk)
                        for chunk in chunks]
            try:
                chunk_marks = executor.map(run_diff_chunk_worker, payloads)
            except TraceShippingError:
                # A segment vanished under a worker (hostile /dev/shm
                # cleaner, racing sweep).  Re-ship inline — identical
                # marks, wire cost.
                handles = (_ship_trace(left, shipped, inline=True),
                           _ship_trace(right, shipped, inline=True))
                payloads = [(handles[0], handles[1], plan.config, chunk)
                            for chunk in chunks]
                chunk_marks = executor.map(run_diff_chunk_worker, payloads)
        finally:
            _release_shipped(shipped)
        marks = [mark for marks_chunk in chunk_marks
                 for mark in marks_chunk]
        return plan.merge(marks, counter=counter, started=started)
    finally:
        if owned:
            executor.close()


# -- anchored segmental execution --------------------------------------------


def _inner_gap_diff(engine, left: Trace, right: Trace, *,
                    config: ViewDiffConfig, counter: OpCounter,
                    budget: "MemoryBudget | None",
                    key_table: "KeyTable | None") -> DiffResult:
    """One gap through the inner engine, feeding only the keywords its
    signature accepts (pre-interning engines stay valid)."""
    from repro.api.engines import accepts_kwarg

    kwargs = {}
    if key_table is not None and accepts_kwarg(engine, "key_table"):
        kwargs["key_table"] = key_table
    if budget is not None and accepts_kwarg(engine, "budget"):
        kwargs["budget"] = budget
    return engine.diff(left, right, config=config, counter=counter,
                       **kwargs)


def run_segment_chunk_worker(payload: tuple) -> list[tuple]:
    """Diff one chunk of gap segments in a worker process.

    ``payload`` is ``(left_handle, right_handle, engine_name, config,
    jobs)`` — the *full* traces as ship handles (one shared-memory
    segment per distinct trace, or inline wire bytes) plus the gap
    bounds to slice locally; a warm worker that already holds a
    trace's digest decodes nothing.  The inner engine is resolved by registry
    name; built-ins are always available in workers.  Each job returns
    ``(gap index, result wire, worker tag)`` — slices preserve entry
    ids, so the wire is directly meaningful to the parent's own gap
    sub-traces.
    """
    from repro.api.engines import get_engine

    left_handle, right_handle, engine_name, config, jobs = payload
    state = worker_state()
    state.diff_jobs += len(jobs)
    left = resolve_trace_handle(left_handle)
    right = resolve_trace_handle(right_handle)
    engine = get_engine(engine_name)
    worker = f"pid:{os.getpid()}"
    out: list[tuple] = []
    for index, l_lo, l_hi, r_lo, r_hi in jobs:
        gap_l = left[l_lo:l_hi]
        gap_r = right[r_lo:r_hi]
        local = OpCounter()
        result = _inner_gap_diff(engine, gap_l, gap_r, config=config,
                                 counter=local, budget=None,
                                 key_table=None)
        out.append((index,
                    result_to_wire(result, counter_totals=(local.compares,
                                                           local.charged)),
                    worker))
    return out


def anchored_segment_diff(left: Trace, right: Trace, inner=None, *,
                          config: ViewDiffConfig | None = None,
                          counter: OpCounter | None = None,
                          budget: "MemoryBudget | None" = None,
                          key_table: "KeyTable | None" = None,
                          executor: "Executor | str | None" = None,
                          cache=None,
                          workers: "list[str] | None" = None
                          ) -> DiffResult:
    """Anchored segmental diff with ``inner`` run on each gap
    (:data:`~repro.api.engines.DEFAULT_GAP_INNER` — the bit-parallel
    LCS — when ``inner`` is ``None``).

    The driver behind the ``anchored:*`` meta-engines
    (:class:`repro.api.engines.AnchoredEngine`):

    1. segment the pair along patience-style ``=e`` anchor runs
       (:func:`~repro.core.anchors.segment_pair`);
    2. skip one-sided gaps outright (pure insertions/deletions);
    3. consult the gap-granular :class:`~repro.cache.SegmentCache`
       (when a :class:`~repro.cache.DiffCache` handle is supplied and
       no ``budget`` is in force) — hits credit the caller's counter
       with the gap's cold totals;
    4. run the remaining gaps through the inner engine — inline,
       across a thread pool, or chunked to worker processes with both
       traces shipped once each as digest-keyed shared-memory
       segments (inline wire text when shared memory is unavailable);
    5. merge everything into one full-trace result
       (:func:`~repro.core.anchors.merge_segment_results`).

    ``budget``-carrying calls run serial and uncached so the budget's
    high-water accounting (and any
    :class:`~repro.core.lcs.LcsMemoryError`) reflects real work.
    ``workers`` (optional) collects one tag per two-sided gap —
    ``"cache"``, ``"inline"``, ``"thread:NAME"`` or ``"pid:N"`` —
    observability for tests and benchmarks.
    """
    started = time.perf_counter()
    if inner is None:
        from repro.api.engines import DEFAULT_GAP_INNER, get_engine

        inner = get_engine(DEFAULT_GAP_INNER)
    if config is None:
        config = ViewDiffConfig()
    if counter is None:
        counter = OpCounter()
    # Gap diffs must not re-anchor (the segmentation already did).
    inner_config = dataclasses.replace(config, anchored=False) \
        if config.anchored else config
    table = None
    if config.interned:
        table = key_table if key_table is not None \
            else KeyTable.for_pair(left, right)
    segmentation = segment_pair(
        left, right, config=AnchorConfig.from_view_config(config),
        interned=config.interned, key_table=table, counter=counter,
        kernel=config.kernel)

    # Slice lazily: one-sided gaps (pure insertions/deletions) never
    # need their sub-traces materialised.
    gap_traces: dict[int, tuple[Trace, Trace]] = {}
    results: "list[DiffResult | None]" = [None] * len(segmentation.gaps)
    pending: list[tuple[int, str | None]] = []
    for index, gap in enumerate(segmentation.gaps):
        if gap.left_len == 0 or gap.right_len == 0:
            continue  # one-sided: nothing can match
        gap_traces[index] = (left[gap.left_lo:gap.left_hi],
                             right[gap.right_lo:gap.right_hi])
        pending.append((index, None))

    segcache = None
    if cache is not None and budget is None:
        from repro.cache.segments import SegmentCache

        segcache = SegmentCache(cache)
        still: list[tuple[int, str | None]] = []
        for index, _key in pending:
            gap_l, gap_r = gap_traces[index]
            key = segcache.key_for(gap_l, gap_r, inner.name, inner_config)
            hit = segcache.get(key, gap_l, gap_r)
            if hit is not None:
                counter.bump(hit.counter.compares)
                counter.charge(hit.counter.charged)
                results[index] = hit
                if workers is not None:
                    workers.append("cache")
            else:
                still.append((index, key))
        pending = still

    def finish(index: int, key: "str | None", result: DiffResult,
               totals: tuple[int, int], worker: str) -> None:
        results[index] = result
        if segcache is not None and key is not None:
            gap_l, gap_r = gap_traces[index]
            segcache.put(key, result, gap_l, gap_r,
                         counter_totals=totals)
        if workers is not None:
            workers.append(worker)

    def run_inline(items: "list[tuple[int, str | None]]") -> None:
        for index, key in items:
            gap_l, gap_r = gap_traces[index]
            before = (counter.compares, counter.charged)
            result = _inner_gap_diff(inner, gap_l, gap_r,
                                     config=inner_config,
                                     counter=counter, budget=budget,
                                     key_table=table)
            totals = (counter.compares - before[0],
                      counter.charged - before[1])
            finish(index, key, result, totals, "inline")

    executor, owned = resolve_executor(executor)
    try:
        if budget is not None or executor.name == "serial" \
                or len(pending) <= 1:
            run_inline(pending)
        elif executor.in_process:
            def run_gap(item: tuple) -> tuple:
                index, key = item
                gap_l, gap_r = gap_traces[index]
                local = OpCounter()
                result = _inner_gap_diff(inner, gap_l, gap_r,
                                         config=inner_config,
                                         counter=local, budget=None,
                                         key_table=table)
                return (index, key, result,
                        (local.compares, local.charged),
                        f"thread:{threading.current_thread().name}")

            for index, key, result, totals, worker in \
                    executor.map(run_gap, pending):
                counter.bump(totals[0])
                counter.charge(totals[1])
                finish(index, key, result, totals, worker)
        else:
            chunks = chunk_evenly(pending,
                                  getattr(executor, "max_workers", 1))
            keys = dict(pending)
            job_chunks = []
            for chunk in chunks:
                jobs = []
                for index, _key in chunk:
                    gap = segmentation.gaps[index]
                    jobs.append((index, gap.left_lo, gap.left_hi,
                                 gap.right_lo, gap.right_hi))
                job_chunks.append(jobs)
            shipped: list[str] = []
            try:
                handles = (_ship_trace(left, shipped),
                           _ship_trace(right, shipped))
                payloads = [(handles[0], handles[1], inner.name,
                             inner_config, jobs) for jobs in job_chunks]
                try:
                    chunk_results = executor.map(run_segment_chunk_worker,
                                                 payloads)
                except TraceShippingError:
                    # A segment vanished under a worker — re-ship
                    # inline; identical gap results, wire cost.
                    handles = (_ship_trace(left, shipped, inline=True),
                               _ship_trace(right, shipped, inline=True))
                    payloads = [(handles[0], handles[1], inner.name,
                                 inner_config, jobs)
                                for jobs in job_chunks]
                    chunk_results = executor.map(run_segment_chunk_worker,
                                                 payloads)
                except KeyError:
                    # The worker could not resolve the inner engine by
                    # name (an engine registered only in this process,
                    # on a spawn-start platform where workers don't
                    # inherit the registry).  The gaps are still
                    # perfectly diffable here — fall back to inline
                    # execution rather than failing the diff.
                    chunk_results = None
                    run_inline(pending)
            finally:
                _release_shipped(shipped)
            if chunk_results is not None:
                for chunk_out in chunk_results:
                    for index, wire, worker in chunk_out:
                        gap_l, gap_r = gap_traces[index]
                        result = result_from_wire(wire, gap_l, gap_r)
                        counter.bump(result.counter.compares)
                        counter.charge(result.counter.charged)
                        finish(index, keys[index], result,
                               (result.counter.compares,
                                result.counter.charged), worker)
    finally:
        if owned:
            executor.close()

    return merge_segment_results(
        left, right, segmentation, results, counter=counter,
        algorithm=f"anchored:{getattr(inner, 'name', 'engine')}",
        seconds=time.perf_counter() - started,
        peak_cells=budget.peak_cells if budget is not None else 0)
