"""The execution layer: where work actually runs.

Everything above this module (sessions, pipelines, the harness, the
CLI) expresses work as *ordered task batches*; an :class:`Executor`
decides how a batch is evaluated:

* ``serial`` — inline, in submission order (the zero-dependency
  default; also what the tests compare every parallel result against).
* ``threads`` — a prewarmed ``ThreadPoolExecutor``.  In-process, so
  captures still contend on the process-wide capture lock, but diff and
  analysis work overlaps.
* ``processes`` — a prewarmed ``ProcessPoolExecutor``.  Each worker
  process owns its *own* ``sys.settrace`` weaver, so captures proceed
  truly concurrently; task functions and arguments must be picklable,
  and results come back over the serialization-v2 wire format (see
  :mod:`repro.exec.capture`).

Executors are deliberately tiny: ``map(fn, items)`` with ordered
results is the whole contract, plus ``in_process`` so drivers know
whether tasks cross a pickle boundary.  Both pool executors spawn every
worker *at construction time*: a lazily-spawned thread would be
recorded as a stray fork by any capture already holding the weaver, and
a lazily-forked process could inherit a mid-capture interpreter.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

#: Upper bound on pool size when none is requested.
DEFAULT_MAX_WORKERS = 8

#: The registry names, in documentation order.
EXECUTOR_NAMES = ("serial", "threads", "processes")


@runtime_checkable
class Executor(Protocol):
    """What an execution backend must provide.

    ``map`` evaluates ``fn`` over ``items`` and returns the results in
    item order (raising the first task exception, like ``pool.map``).
    ``in_process`` tells drivers whether tasks run in this interpreter
    (closures welcome, capture lock required) or cross a process
    boundary (everything pickled, captures lock-free).
    """

    name: str
    in_process: bool

    def map(self, fn: Callable, items: Iterable) -> list:
        ...

    def close(self) -> None:
        ...


class SerialExecutor:
    """Inline execution, in order — the baseline every result is
    compared against."""

    name = "serial"
    in_process = True

    def __init__(self, max_workers: int | None = None):
        self.max_workers = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


def prewarm_thread_pool(pool: ThreadPoolExecutor, workers: int) -> None:
    """Force every pool thread to exist now.

    The capture layer's active tracer wraps ``threading.Thread.start``
    process-wide; a worker spawned while some capture holds the weaver
    would be recorded as a spurious fork inside that workload's trace.
    A barrier task per worker makes the pool fully populated before the
    executor is handed to anyone.
    """
    barrier = threading.Barrier(workers)
    for warmup in [pool.submit(barrier.wait) for _ in range(workers)]:
        warmup.result()


class ThreadExecutor:
    """A prewarmed thread pool (in-process: overlaps diff/analysis;
    captures still serialise on the capture lock)."""

    name = "threads"
    in_process = True

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max(1, max_workers if max_workers is not None
                               else DEFAULT_MAX_WORKERS)
        self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        prewarm_thread_pool(self._pool, self.max_workers)

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadExecutor(max_workers={self.max_workers})"


def _worker_pid(delay: float = 0.0) -> int:
    """Prewarm task: spawns the worker and reports its pid.  The delay
    holds the worker long enough for its siblings to take the other
    prewarm tasks, so every worker reports."""
    if delay:
        time.sleep(delay)
    return os.getpid()


class ProcessExecutor:
    """A prewarmed process pool — each worker owns its own settrace
    weaver, so captures proceed truly concurrently.

    Tasks and results are pickled; callables must therefore be
    module-level.  The pool is fully spawned at construction (the
    ``fork`` start method where available, so workers are cheap and
    inherit imported modules), which keeps later ``map`` calls free of
    mid-capture forking.
    """

    name = "processes"
    in_process = False

    def __init__(self, max_workers: int | None = None):
        import multiprocessing

        self.max_workers = max(1, max_workers if max_workers is not None
                               else DEFAULT_MAX_WORKERS)
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers,
                                         mp_context=context)
        # One submit per worker forces the pool to spawn all of them
        # now; sleep-staggered rounds make every worker take (and
        # report) a prewarm task, doubling as a liveness check.
        pids: set[int] = set()
        for _ in range(10):
            futures = [self._pool.submit(_worker_pid, 0.05)
                       for _ in range(self.max_workers)]
            pids.update(future.result() for future in futures)
            if len(pids) >= self.max_workers:
                break
        self.worker_pids = tuple(sorted(pids))

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessExecutor(max_workers={self.max_workers})"


_FACTORIES: dict[str, type] = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}


def available_executors() -> tuple[str, ...]:
    """The selectable executor names (stable, documentation order)."""
    return EXECUTOR_NAMES


def get_executor(spec: "str | Executor | None",
                 max_workers: int | None = None) -> Executor:
    """Resolve an executor.

    ``spec`` may be an executor instance (passed through), ``None``
    (serial), or a registry name — optionally with a worker count
    suffix, e.g. ``"processes:4"``.  An explicit ``max_workers``
    argument overrides a suffix.
    """
    if spec is None:
        return SerialExecutor()
    if not isinstance(spec, str):
        if isinstance(spec, Executor):
            return spec
        raise TypeError(f"not an executor: {spec!r}")
    name, sep, suffix = spec.partition(":")
    workers = max_workers
    if sep:
        try:
            suffix_workers = int(suffix)
        except ValueError:
            # Validate even when max_workers overrides — a typo'd spec
            # must never be silently accepted.
            raise ValueError(f"bad executor worker count in {spec!r}")
        if workers is None:
            workers = suffix_workers
    factory = _FACTORIES.get(name)
    if factory is None:
        raise KeyError(f"unknown executor {spec!r}; available: "
                       f"{', '.join(available_executors())}")
    return factory(max_workers=workers)


def resolve_executor(spec: "str | Executor | None",
                     max_workers: int | None = None
                     ) -> tuple[Executor, bool]:
    """:func:`get_executor` plus an *ownership* flag.

    ``owned`` is True when this call constructed the executor from a
    spec (name string or ``None``) — the caller is then responsible for
    closing it once the batch is done, so one-shot drivers never strand
    worker pools.  Instances pass through unowned (the caller who built
    the pool keeps its lifecycle).
    """
    owned = not isinstance(spec, Executor)
    return get_executor(spec, max_workers=max_workers), owned


def chunk_evenly(items: Sequence, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous, non-empty
    runs of near-equal length, preserving order (deterministic — the
    parallel diff path relies on chunk order for result identity)."""
    items = list(items)
    if not items:
        return []
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out: list[list] = []
    at = 0
    for index in range(chunks):
        width = size + (1 if index < extra else 0)
        out.append(items[at:at + width])
        at += width
    return out
