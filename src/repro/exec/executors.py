"""The execution layer: where work actually runs.

Everything above this module (sessions, pipelines, the harness, the
CLI) expresses work as *ordered task batches*; an :class:`Executor`
decides how a batch is evaluated:

* ``serial`` — inline, in submission order (the zero-dependency
  default; also what the tests compare every parallel result against).
* ``threads`` — a prewarmed ``ThreadPoolExecutor``.  In-process, so
  captures still contend on the process-wide capture lock, but diff and
  analysis work overlaps.
* ``processes`` — a prewarmed ``ProcessPoolExecutor``.  Each worker
  process owns its *own* ``sys.settrace`` weaver, so captures proceed
  truly concurrently; task functions and arguments must be picklable,
  and results come back over the serialization-v2 wire format (see
  :mod:`repro.exec.capture`).

Executors are deliberately tiny: ``map(fn, items)`` with ordered
results is the whole contract, plus ``in_process`` so drivers know
whether tasks cross a pickle boundary.  Both pool executors spawn every
worker *at construction time*: a lazily-spawned thread would be
recorded as a stray fork by any capture already holding the weaver, and
a lazily-forked process could inherit a mid-capture interpreter.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

#: Upper bound on pool size when none is requested.
DEFAULT_MAX_WORKERS = 8

#: The registry names, in documentation order.
EXECUTOR_NAMES = ("serial", "threads", "processes")

#: How many stealable singleton leases a batch reserves per pool (see
#: :func:`lease_chunks`).
LEASE_TAIL_PER_WORKER = 1


@runtime_checkable
class Executor(Protocol):
    """What an execution backend must provide.

    ``map`` evaluates ``fn`` over ``items`` and returns the results in
    item order (raising the first task exception, like ``pool.map``).
    ``in_process`` tells drivers whether tasks run in this interpreter
    (closures welcome, capture lock required) or cross a process
    boundary (everything pickled, captures lock-free).
    """

    name: str
    in_process: bool

    def map(self, fn: Callable, items: Iterable) -> list:
        ...

    def close(self) -> None:
        ...


class SerialExecutor:
    """Inline execution, in order — the baseline every result is
    compared against."""

    name = "serial"
    in_process = True

    def __init__(self, max_workers: int | None = None):
        self.max_workers = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


def prewarm_thread_pool(pool: ThreadPoolExecutor, workers: int) -> None:
    """Force every pool thread to exist now.

    The capture layer's active tracer wraps ``threading.Thread.start``
    process-wide; a worker spawned while some capture holds the weaver
    would be recorded as a spurious fork inside that workload's trace.
    A barrier task per worker makes the pool fully populated before the
    executor is handed to anyone.
    """
    barrier = threading.Barrier(workers)
    for warmup in [pool.submit(barrier.wait) for _ in range(workers)]:
        warmup.result()


class ThreadExecutor:
    """A prewarmed thread pool (in-process: overlaps diff/analysis;
    captures still serialise on the capture lock)."""

    name = "threads"
    in_process = True

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max(1, max_workers if max_workers is not None
                               else DEFAULT_MAX_WORKERS)
        self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        prewarm_thread_pool(self._pool, self.max_workers)

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadExecutor(max_workers={self.max_workers})"


def _worker_pid(delay: float = 0.0) -> int:
    """Prewarm task: spawns the worker and reports its pid.  The delay
    holds the worker long enough for its siblings to take the other
    prewarm tasks, so every worker reports."""
    if delay:
        time.sleep(delay)
    return os.getpid()


class ProcessExecutor:
    """A prewarmed process pool — each worker owns its own settrace
    weaver, so captures proceed truly concurrently.

    Tasks and results are pickled; callables must therefore be
    module-level.  The pool is fully spawned at construction (the
    ``fork`` start method where available, so workers are cheap and
    inherit imported modules), which keeps later ``map`` calls free of
    mid-capture forking.

    A pool built with ``shared=True`` is *warm*: it belongs to the
    process-wide registry (:func:`shared_process_executor`), survives
    :meth:`close` — which only records the release — and is actually
    shut down by :func:`shutdown_warm_pools` (``atexit``-registered).
    Sessions, pipelines, and the one-shot ``run_capture_tasks`` /
    diff drivers all lease the same warm pool for a given worker
    count, so spin-up is paid once per process, not once per call.
    """

    name = "processes"
    in_process = False

    def __init__(self, max_workers: int | None = None, *,
                 shared: bool = False):
        import multiprocessing

        self.max_workers = max(1, max_workers if max_workers is not None
                               else DEFAULT_MAX_WORKERS)
        self.shared = shared
        self.broken = False
        #: Dispatch statistics (``stats()``): every ``map`` is one
        #: batch; each mapped item is one task lease.
        self.batches = 0
        self.tasks_leased = 0
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers,
                                         mp_context=context)
        _note_open_pool(self)
        # One submit per worker forces the pool to spawn all of them
        # now; sleep-staggered rounds make every worker take (and
        # report) a prewarm task, doubling as a liveness check.
        pids: set[int] = set()
        for _ in range(10):
            futures = [self._pool.submit(_worker_pid, 0.05)
                       for _ in range(self.max_workers)]
            pids.update(future.result() for future in futures)
            if len(pids) >= self.max_workers:
                break
        self.worker_pids = tuple(sorted(pids))

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        self.batches += 1
        self.tasks_leased += len(items)
        try:
            return list(self._pool.map(fn, items))
        except BrokenProcessPool:
            # A worker died mid-batch.  Mark the pool unusable (the
            # warm registry rebuilds on next lease), shut it down, and
            # collect any shared-memory orphans the dead worker left.
            self.broken = True
            self._pool.shutdown(wait=False, cancel_futures=True)
            from repro.exec.shm import parent_registry
            parent_registry().sweep()
            raise

    def close(self) -> None:
        """Release the pool: a real shutdown for privately built
        pools, a no-op for warm shared ones (the registry owns those —
        see :func:`shutdown_warm_pools`)."""
        if not self.shared:
            self.shutdown()

    def shutdown(self) -> None:
        """Actually stop the workers (regardless of ``shared``) and
        release any shared-memory segments this process tracks when no
        other process pool remains open."""
        self._pool.shutdown(wait=True)
        _forget_open_pool(self)

    def stats(self) -> dict:
        """Pool observability for benches and ``/v1/stats``."""
        return {"pool_size": self.max_workers,
                "worker_pids": list(self.worker_pids),
                "shared": self.shared,
                "broken": self.broken,
                "batches": self.batches,
                "tasks_leased": self.tasks_leased}

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProcessExecutor(max_workers={self.max_workers}"
                f"{', shared' if self.shared else ''})")


# -- the warm pool registry ---------------------------------------------------

#: Live process pools of this process: the shm segment registry is
#: drained when the last one shuts down (workers that could attach a
#: segment no longer exist).
_OPEN_POOLS: "set[int]" = set()
#: Warm shared pools by worker count.
_WARM_POOLS: dict[int, ProcessExecutor] = {}
_pools_lock = threading.Lock()


def _note_open_pool(pool: ProcessExecutor) -> None:
    with _pools_lock:
        _OPEN_POOLS.add(id(pool))


def _forget_open_pool(pool: ProcessExecutor) -> None:
    with _pools_lock:
        _OPEN_POOLS.discard(id(pool))
        last = not _OPEN_POOLS
    if last:
        from repro.exec.shm import parent_registry
        parent_registry().release_all()


def shared_process_executor(max_workers: int | None = None
                            ) -> ProcessExecutor:
    """The process-wide *warm* pool for ``max_workers`` workers.

    Built once, prewarmed once, reused by every session / pipeline /
    one-shot helper that asks for ``"processes"`` with the same worker
    count; its ``close()`` is a no-op, so short-lived drivers can hold
    it without tearing it down for everyone else.  A pool broken by a
    worker crash is replaced on the next lease.
    """
    workers = max(1, max_workers if max_workers is not None
                  else DEFAULT_MAX_WORKERS)
    with _pools_lock:
        pool = _WARM_POOLS.get(workers)
    if pool is not None and not pool.broken:
        return pool
    fresh = ProcessExecutor(max_workers=workers, shared=True)
    with _pools_lock:
        raced = _WARM_POOLS.get(workers)
        if raced is not None and not raced.broken and raced is not fresh:
            stale, keep = fresh, raced
        else:
            stale, keep = _WARM_POOLS.get(workers), fresh
            _WARM_POOLS[workers] = fresh
    if stale is not None and stale is not keep:
        stale.shutdown()
    return keep


def shutdown_warm_pools() -> None:
    """Shut down every warm shared pool (tests, interpreter exit)."""
    with _pools_lock:
        pools = list(_WARM_POOLS.values())
        _WARM_POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_warm_pools)


def lease_chunks(items: Sequence, workers: int) -> list[list]:
    """Split a task batch into worker *leases*: ``workers`` contiguous
    near-even chunks covering most of the batch, then a tail of
    singleton leases idle workers steal — one round trip per lease
    instead of one per task, without a long straggler pinning the
    batch to its worker.  Deterministic (result reassembly relies on
    lease order)."""
    items = list(items)
    workers = max(1, workers)
    if len(items) <= workers:
        return [[item] for item in items]
    tail_len = min(workers * LEASE_TAIL_PER_WORKER, max(len(items) // 4, 1))
    head, tail = items[:len(items) - tail_len], items[len(items) - tail_len:]
    return chunk_evenly(head, workers) + [[item] for item in tail]


_FACTORIES: dict[str, type] = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}


def available_executors() -> tuple[str, ...]:
    """The selectable executor names (stable, documentation order)."""
    return EXECUTOR_NAMES


def get_executor(spec: "str | Executor | None",
                 max_workers: int | None = None) -> Executor:
    """Resolve an executor.

    ``spec`` may be an executor instance (passed through), ``None``
    (serial), or a registry name — optionally with a worker count
    suffix, e.g. ``"processes:4"``.  An explicit ``max_workers``
    argument overrides a suffix.
    """
    if spec is None:
        return SerialExecutor()
    if not isinstance(spec, str):
        if isinstance(spec, Executor):
            return spec
        raise TypeError(f"not an executor: {spec!r}")
    name, sep, suffix = spec.partition(":")
    workers = max_workers
    if sep:
        try:
            suffix_workers = int(suffix)
        except ValueError:
            # Validate even when max_workers overrides — a typo'd spec
            # must never be silently accepted.
            raise ValueError(f"bad executor worker count in {spec!r}")
        if workers is None:
            workers = suffix_workers
    factory = _FACTORIES.get(name)
    if factory is None:
        raise KeyError(f"unknown executor {spec!r}; available: "
                       f"{', '.join(available_executors())}")
    return factory(max_workers=workers)


def resolve_executor(spec: "str | Executor | None",
                     max_workers: int | None = None, *,
                     reuse: bool = True) -> tuple[Executor, bool]:
    """:func:`get_executor` plus an *ownership* flag.

    ``owned`` is True when this call resolved the executor from a spec
    (name string or ``None``) — the caller is then responsible for
    closing it once the batch is done, so one-shot drivers never strand
    worker pools.  Instances pass through unowned (the caller who built
    the pool keeps its lifecycle).

    With ``reuse`` (the default), a ``"processes"`` name spec resolves
    to the process-wide **warm pool** for that worker count
    (:func:`shared_process_executor`): still "owned" — callers close it
    as before — but close is a soft release, so repeat calls (a
    session's diffs, back-to-back ``run_pipeline`` batches, the
    service's jobs) never rebuild a pool.  ``reuse=False`` restores a
    private, really-torn-down pool.
    """
    owned = not isinstance(spec, Executor)
    if owned and reuse and isinstance(spec, str) \
            and spec.partition(":")[0] == "processes":
        name, sep, suffix = spec.partition(":")
        workers = max_workers
        if sep:
            try:
                suffix_workers = int(suffix)
            except ValueError:
                raise ValueError(f"bad executor worker count in {spec!r}")
            if workers is None:
                workers = suffix_workers
        return shared_process_executor(workers), True
    return get_executor(spec, max_workers=max_workers), owned


def chunk_evenly(items: Sequence, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous, non-empty
    runs of near-equal length, preserving order (deterministic — the
    parallel diff path relies on chunk order for result identity)."""
    items = list(items)
    if not items:
        return []
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out: list[list] = []
    at = 0
    for index in range(chunks):
        width = size + (1 if index < extra else 0)
        out.append(items[at:at + width])
        at += width
    return out
