"""``repro.exec`` — the execution layer.

Work above this package (sessions, pipelines, the harness, the CLI) is
expressed as ordered task batches; an :class:`Executor` decides how a
batch runs — ``serial`` inline, ``threads`` across a prewarmed thread
pool, ``processes`` across a prewarmed process pool whose workers each
own their own ``sys.settrace`` weaver.

The process backend is a *persistent substrate*:

* **warm pools** (:func:`shared_process_executor`) — one prewarmed
  pool per worker count, shared by every session / pipeline / one-shot
  driver that names ``"processes"``, shut down at interpreter exit (or
  :func:`shutdown_warm_pools`); spin-up is paid once per process.
* **zero-copy trace shipping** (:mod:`repro.exec.shm`) — traces cross
  the boundary as serialization-v2 wire bytes in
  ``multiprocessing.shared_memory`` segments, refcounted and
  guaranteed-unlinked by a :class:`~repro.exec.shm.SegmentRegistry`
  (with an orphan sweep for crashed workers), falling back to inline
  text transparently.
* **batched leasing** (:func:`lease_chunks`) — workers lease
  near-even chunks plus a work-stealing singleton tail instead of one
  task per round trip; per-pid caches
  (:mod:`repro.exec.workerstate`) ensure a trace crosses at most once
  per worker.

Two task kinds ride the layer today:

* capture (:mod:`repro.exec.capture`) — :class:`CaptureTask` batches
  through :func:`run_capture_tasks`; process workers capture lock-free
  and ship traces home through shared memory.  The process-wide
  :data:`CAPTURE_LOCK` lives here and applies only to in-process
  execution.
* diff (:mod:`repro.exec.diffing`) — the views-based diff's execution
  phase (independent correlated-thread-pair evaluations) through
  :func:`executed_view_diff`, bit-identical to the serial path, and
  the anchored segmental driver :func:`anchored_segment_diff` (gap
  diffs fanned out as chunks, with segment-granular caching).
"""

from repro.exec.capture import (CAPTURE_LOCK, CaptureOutcome, CaptureTask,
                                RemoteCaptureError, capture_call,
                                capture_task_locally, ensure_portable,
                                resolve_callable, run_capture_tasks)
from repro.exec.diffing import anchored_segment_diff, executed_view_diff
from repro.exec.executors import (DEFAULT_MAX_WORKERS, Executor,
                                  ProcessExecutor, SerialExecutor,
                                  ThreadExecutor, available_executors,
                                  chunk_evenly, get_executor, lease_chunks,
                                  prewarm_thread_pool, resolve_executor,
                                  shared_process_executor,
                                  shutdown_warm_pools)
from repro.exec.shm import (SegmentRegistry, TraceShippingError,
                            parent_registry, shm_available, shm_stats)
from repro.exec.workerstate import WorkerState, worker_state

__all__ = [
    "CAPTURE_LOCK", "CaptureOutcome", "CaptureTask", "DEFAULT_MAX_WORKERS",
    "Executor", "ProcessExecutor", "RemoteCaptureError", "SegmentRegistry",
    "SerialExecutor", "ThreadExecutor", "TraceShippingError", "WorkerState",
    "anchored_segment_diff", "available_executors", "capture_call",
    "capture_task_locally", "chunk_evenly", "ensure_portable",
    "executed_view_diff", "get_executor", "lease_chunks", "parent_registry",
    "prewarm_thread_pool", "resolve_callable", "resolve_executor",
    "run_capture_tasks", "shared_process_executor", "shm_available",
    "shm_stats", "shutdown_warm_pools", "worker_state",
]
