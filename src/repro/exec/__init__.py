"""``repro.exec`` — the execution layer.

Work above this package (sessions, pipelines, the harness, the CLI) is
expressed as ordered task batches; an :class:`Executor` decides how a
batch runs — ``serial`` inline, ``threads`` across a prewarmed thread
pool, ``processes`` across a prewarmed process pool whose workers each
own their own ``sys.settrace`` weaver.

Two task kinds ride the layer today:

* capture (:mod:`repro.exec.capture`) — :class:`CaptureTask` batches
  through :func:`run_capture_tasks`; process workers capture lock-free
  and ship traces back as serialization-v2 text.  The process-wide
  :data:`CAPTURE_LOCK` now lives here and applies only to in-process
  execution.
* diff (:mod:`repro.exec.diffing`) — the views-based diff's execution
  phase (independent correlated-thread-pair evaluations) through
  :func:`executed_view_diff`, bit-identical to the serial path, and
  the anchored segmental driver :func:`anchored_segment_diff` (gap
  diffs fanned out as chunks, with segment-granular caching).
"""

from repro.exec.capture import (CAPTURE_LOCK, CaptureOutcome, CaptureTask,
                                RemoteCaptureError, capture_call,
                                capture_task_locally, ensure_portable,
                                resolve_callable, run_capture_tasks)
from repro.exec.diffing import anchored_segment_diff, executed_view_diff
from repro.exec.executors import (DEFAULT_MAX_WORKERS, Executor,
                                  ProcessExecutor, SerialExecutor,
                                  ThreadExecutor, available_executors,
                                  chunk_evenly, get_executor,
                                  prewarm_thread_pool, resolve_executor)

__all__ = [
    "CAPTURE_LOCK", "CaptureOutcome", "CaptureTask", "DEFAULT_MAX_WORKERS",
    "Executor", "ProcessExecutor", "RemoteCaptureError", "SerialExecutor",
    "ThreadExecutor", "anchored_segment_diff", "available_executors",
    "capture_call",
    "capture_task_locally", "chunk_evenly", "ensure_portable",
    "executed_view_diff", "get_executor", "prewarm_thread_pool",
    "resolve_callable", "resolve_executor", "run_capture_tasks",
]
