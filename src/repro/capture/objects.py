"""Object instrumentation: creation and field-access events.

The :func:`traced` class decorator is the capture-layer counterpart of
the formal rules CONS-E / FIELD-ACC-E / FIELD-ASS-E: instances of a
decorated class record an ``init`` event at construction (via the
tracer's ``__init__`` hook) and ``get``/``set`` events on attribute reads
and writes while a tracer is active.

Reads of callables (bound methods) and underscore-prefixed attributes
are not recorded — the former are dispatch plumbing, the latter are the
pointcut convention for internal state excluded from weaving (RPRISM
uses AspectJ pointcuts the same way to keep traces focused).
"""

from __future__ import annotations

from repro.capture.tracer import current_tracer


def _should_record_attribute(name: str, value: object) -> bool:
    if name.startswith("_"):
        return False
    if callable(value):
        return False
    return True


def traced(cls: type) -> type:
    """Class decorator: weave field get/set recording into ``cls``.

    Idempotent; subclasses of a traced class inherit the weaving.
    """
    if getattr(cls, "__rprism_traced__", False):
        return cls

    original_setattr = cls.__setattr__
    original_getattribute = cls.__getattribute__

    def __setattr__(self, name: str, value) -> None:
        tracer = current_tracer()
        if tracer is not None and not name.startswith("_"):
            tracer.record_field_set(self, name, value)
        original_setattr(self, name, value)

    def __getattribute__(self, name: str):
        value = original_getattribute(self, name)
        if name.startswith("_"):
            return value
        tracer = current_tracer()
        if tracer is not None and _should_record_attribute(name, value):
            tracer.record_field_get(self, name, value)
        return value

    cls.__setattr__ = __setattr__
    cls.__getattribute__ = __getattribute__
    cls.__rprism_traced__ = True
    return cls
