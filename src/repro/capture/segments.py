"""Smart trace segmentation (Sec. 5, "Tracing of long-running programs").

RPRISM records relatively short regions of execution as individual trace
*segments*; once a segment finishes, its data is offloaded to disk and the
tracing memory reclaimed, letting long-running programs be traced within
bounded memory.  ``SegmentedTraceWriter`` reproduces that scheme on top of
the JSON-lines serialisation: entries are flushed to per-segment files
whenever the in-memory buffer reaches the segment size, and
:func:`load_segments` reassembles the full trace offline.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.serialize import iter_entries, save_entries
from repro.core.entries import TraceEntry
from repro.core.traces import Trace


class SegmentedTraceWriter:
    """Buffers entries and offloads them to disk in segments."""

    def __init__(self, directory: str | Path, name: str = "trace",
                 segment_size: int = 10_000):
        if segment_size <= 0:
            raise ValueError("segment_size must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.name = name
        self.segment_size = segment_size
        self._buffer: list[TraceEntry] = []
        self._segment_paths: list[Path] = []
        self._total = 0
        self._closed = False

    def append(self, entry: TraceEntry) -> None:
        if self._closed:
            raise RuntimeError("writer is closed")
        self._buffer.append(entry)
        self._total += 1
        if len(self._buffer) >= self.segment_size:
            self.flush_segment()

    def extend(self, entries) -> None:
        for entry in entries:
            self.append(entry)

    def flush_segment(self) -> Path | None:
        """Offload the current buffer as one segment file."""
        if not self._buffer:
            return None
        index = len(self._segment_paths)
        path = self.directory / f"{self.name}.seg{index:05d}.jsonl"
        save_entries(self._buffer, path, name=self.name,
                     metadata={"segment": index})
        self._segment_paths.append(path)
        self._buffer = []  # reclaim tracing memory
        return path

    def close(self) -> list[Path]:
        """Flush the tail and return all segment paths, in order."""
        if not self._closed:
            self.flush_segment()
            self._closed = True
        return list(self._segment_paths)

    @property
    def total_entries(self) -> int:
        return self._total

    @property
    def segment_paths(self) -> list[Path]:
        return list(self._segment_paths)


def load_segments(paths, name: str = "") -> Trace:
    """Reassemble a trace from segment files written by
    :class:`SegmentedTraceWriter` (offline analysis side)."""
    entries: list[TraceEntry] = []
    for path in paths:
        entries.extend(iter_entries(path))
    return Trace(entries, name=name, metadata={"segments": len(list(paths))})


def segment_trace(trace: Trace, directory: str | Path,
                  segment_size: int = 10_000) -> list[Path]:
    """Offload an in-memory trace to segment files (convenience)."""
    writer = SegmentedTraceWriter(directory, name=trace.name or "trace",
                                  segment_size=segment_size)
    writer.extend(trace.entries)
    return writer.close()
