"""Value representations for live Python objects.

Mirrors RPRISM's approximation of the formal serialisations (Sec. 5):
Java's ``hashCode``/``toString`` truncated to 128 characters become
``repr`` truncated to 128 characters, and — exactly as RPRISM forces the
representation to be empty for classes inheriting
``java.lang.Object``'s defaults — objects whose class inherits
``object.__repr__`` get an *empty* serialisation, because their printable
form embeds a memory address that is meaningless across program versions.

Object identity within one trace is tracked by a :class:`LiveRegistry`
that assigns fresh locations (and per-class creation sequence numbers) to
Python objects on first sighting; it holds strong references so CPython
cannot recycle an ``id`` mid-trace.
"""

from __future__ import annotations

from repro.core.values import (ObjectRegistry, REPR_TRUNCATION, UNIT,
                               ValueRep, prim, truncate_repr)

#: Types recorded as value objects (the formal ``D(d)`` domain).
_PRIMITIVE_TYPES = (bool, int, float, str, bytes, type(None))

#: Container types summarised by truncated repr, location-free.
_CONTAINER_TYPES = (list, tuple, dict, set, frozenset)


def has_custom_repr(obj: object) -> bool:
    """True when the object's class (or an ancestor below ``object``)
    defines ``__repr__`` — i.e. the printable form is meaningful."""
    return type(obj).__repr__ is not object.__repr__


def safe_repr(obj: object) -> str | None:
    """Truncated ``repr``, or None if it fails (e.g. the object is still
    half-constructed when first sighted inside ``__init__``)."""
    try:
        return truncate_repr(repr(obj))
    except Exception:  # noqa: BLE001 - any user __repr__ failure
        return None


class LiveRegistry:
    """Location assignment for live Python objects (one per trace)."""

    def __init__(self):
        self._core = ObjectRegistry()
        self._locations: dict[int, int] = {}
        self._pinned: list[object] = []
        self._next_location = 1

    def rep_of(self, obj: object) -> ValueRep:
        """Representation of a (non-primitive) live object, registering it
        on first sight."""
        key = id(obj)
        location = self._locations.get(key)
        if location is not None:
            return self._core.describe(location)
        location = self._next_location
        self._next_location += 1
        self._locations[key] = location
        self._pinned.append(obj)
        serialization = None
        if has_custom_repr(obj):
            serialization = safe_repr(obj)
        return self._core.register(location, type(obj).__name__,
                                   serialization=serialization)

    def location_of(self, obj: object) -> int | None:
        return self._locations.get(id(obj))

    def refresh(self, obj: object) -> ValueRep:
        """Recompute a mutated object's serialisation (used after field
        writes so later events carry a current value representation)."""
        location = self._locations.get(id(obj))
        if location is None:
            return self.rep_of(obj)
        serialization = None
        if has_custom_repr(obj):
            serialization = safe_repr(obj)
        return self._core.update_serialization(location, serialization)


def live_value_rep(value: object, registry: LiveRegistry) -> ValueRep:
    """``E'#`` for live Python values."""
    if value is None:
        return UNIT
    if isinstance(value, _PRIMITIVE_TYPES):
        if isinstance(value, (str, bytes)) and len(value) > REPR_TRUNCATION:
            value = value[:REPR_TRUNCATION]
        return prim(value)
    if isinstance(value, _CONTAINER_TYPES):
        return ValueRep(class_name=type(value).__name__,
                        serialization=truncate_repr(repr(value)))
    return registry.rep_of(value)
