"""``sys.settrace``-based trace capture (the load-time weaver analogue).

A :class:`Tracer` is a context manager; code executed inside it has its
method calls and returns recorded into a :class:`TraceBuilder`, subject to
the pointcut filter.  Classes decorated with
:func:`repro.capture.objects.traced` additionally record object creation
and field reads/writes.  Threads started inside the context are woven too
(``threading.settrace``), and their fork events capture the full spawn
ancestry just like the formal FORK-E rule.

Usage::

    with Tracer(name="old") as tracer:
        run_the_program()
    trace = tracer.trace()

or the one-shot helper :func:`trace_call`.
"""

from __future__ import annotations

import sys
import threading

from repro.capture.filters import TraceFilter
from repro.capture.values import LiveRegistry, live_value_rep
from repro.core.traces import Trace, TraceBuilder
from repro.core.values import UNIT, ValueRep

#: The installed tracer, if any (module-level because the @traced class
#: wrappers must find it without any reference plumbing).
_ACTIVE: "Tracer | None" = None
_ACTIVE_LOCK = threading.Lock()


def current_tracer() -> "Tracer | None":
    """The currently installed tracer, or None."""
    return _ACTIVE


class Tracer:
    """Records an execution trace of the code run within the context.

    ``key_table`` interns every recorded entry's ``=e`` key at capture
    time (the ingest half of the interned data layer): the finished
    trace carries its id column, so diffing it never rebuilds a key.
    """

    def __init__(self, name: str = "", filter: TraceFilter | None = None,
                 record_fields: bool = True, trace_lines: bool = False,
                 key_table=None):
        self.builder = TraceBuilder(name=name, key_table=key_table)
        self.registry = LiveRegistry()
        self.filter = filter if filter is not None else TraceFilter()
        self.record_fields = record_fields
        self.trace_lines = trace_lines
        self._lock = threading.Lock()
        self._guard = threading.local()
        self._tids: dict[int, int] = {}  # threading ident -> builder tid
        self._finished: Trace | None = None
        self._previous_trace = None
        self._original_thread_start = None

    # -- context management --------------------------------------------------

    def __enter__(self) -> "Tracer":
        global _ACTIVE
        with _ACTIVE_LOCK:
            if _ACTIVE is not None:
                raise RuntimeError("another Tracer is already active")
            _ACTIVE = self
        self._tids[threading.get_ident()] = self.builder.main_tid
        self._previous_trace = sys.gettrace()
        self._original_thread_start = threading.Thread.start
        threading.Thread.start = self._make_start_wrapper()
        threading.settrace(self._trace)
        sys.settrace(self._trace)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        sys.settrace(self._previous_trace)
        threading.settrace(None)  # type: ignore[arg-type]
        threading.Thread.start = self._original_thread_start
        with _ACTIVE_LOCK:
            _ACTIVE = None
        # Close any frames left open (e.g. after an exception) and end the
        # main thread.
        with self._lock:
            main_tid = self.builder.main_tid
            while self.builder.stack_depth(main_tid) > 0:
                self.builder.record_return(main_tid, UNIT)
            self.builder.record_end(main_tid)
            self._finished = self.builder.build(
                metadata={"capture": "settrace"})

    def trace(self) -> Trace:
        """The captured trace (available after the context exits)."""
        if self._finished is None:
            raise RuntimeError("trace() is available after the context ends")
        return self._finished

    # -- value representations -------------------------------------------------

    def rep(self, value: object) -> ValueRep:
        return live_value_rep(value, self.registry)

    # -- thread management -------------------------------------------------------

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            # A thread we did not see being started (pre-existing).
            with self._lock:
                tid = self.builder.register_thread()
                self._tids[ident] = tid
        return tid

    def _make_start_wrapper(self):
        tracer = self
        original_start = self._original_thread_start

        def start(thread: threading.Thread) -> None:
            parent_tid = tracer._tid()
            with tracer._lock:
                child_tid = tracer.builder.record_fork(parent_tid)
            original_run = thread.run

            def run_wrapper():
                tracer._tids[threading.get_ident()] = child_tid
                try:
                    original_run()
                finally:
                    with tracer._lock:
                        while tracer.builder.stack_depth(child_tid) > 0:
                            tracer.builder.record_return(child_tid, UNIT)
                        tracer.builder.record_end(child_tid)

            thread.run = run_wrapper
            original_start(thread)

        return start

    # -- the sys.settrace callback ---------------------------------------------

    def _trace(self, frame, event, arg):
        if event != "call":
            return None
        if getattr(self._guard, "active", False):
            return None
        code = frame.f_code
        module = frame.f_globals.get("__name__")
        if not self.filter.admits_module(module):
            return None
        func_name = code.co_name
        if func_name.startswith("<"):  # lambda, comprehension, module body
            return None
        receiver = frame.f_locals.get("self")
        if receiver is not None:
            qualified = f"{type(receiver).__name__}.{func_name}"
        else:
            short_module = module.rsplit(".", 1)[-1] if module else "?"
            qualified = f"{short_module}.{func_name}"
        if not self.filter.admits_method(qualified):
            return None
        self._record_call(frame, code, receiver, qualified)
        tid = self._tid()

        def local_trace(inner_frame, inner_event, inner_arg):
            if inner_event == "return":
                self._record_return(tid, inner_arg)
                return None
            return local_trace

        try:
            frame.f_trace_lines = self.trace_lines
        except AttributeError:  # pragma: no cover - very old CPython
            pass
        return local_trace

    def _record_call(self, frame, code, receiver, qualified: str) -> None:
        self._guard.active = True
        try:
            tid = self._tid()
            args: list[ValueRep] = []
            names = code.co_varnames[:code.co_argcount]
            for name in names:
                if name == "self":
                    continue
                if name in frame.f_locals:
                    args.append(self.rep(frame.f_locals[name]))
            if receiver is not None:
                obj_rep = self.rep(receiver)
            else:
                module = frame.f_globals.get("__name__") or "?"
                obj_rep = ValueRep(class_name="<module>",
                                   serialization=module)
            with self._lock:
                if code.co_name == "__init__" and receiver is not None:
                    self.builder.record_init_event(
                        tid, type(receiver).__name__, tuple(args), obj_rep)
                self.builder.record_call(tid, obj_rep, qualified,
                                         tuple(args))
        finally:
            self._guard.active = False

    def _record_return(self, tid: int, value) -> None:
        self._guard.active = True
        try:
            rep = self.rep(value)
            with self._lock:
                if self.builder.stack_depth(tid) > 0:
                    self.builder.record_return(tid, rep)
        finally:
            self._guard.active = False

    # -- field events (called by @traced wrappers) -------------------------------

    def record_field_set(self, obj: object, name: str, value) -> None:
        if not self.record_fields or getattr(self._guard, "active", False):
            return
        self._guard.active = True
        try:
            tid = self._tid()
            obj_rep = self.registry.rep_of(obj)
            value_rep = self.rep(value)
            with self._lock:
                self.builder.record_set(tid, obj_rep, name, value_rep)
        finally:
            self._guard.active = False

    def record_field_get(self, obj: object, name: str, value) -> None:
        if not self.record_fields or getattr(self._guard, "active", False):
            return
        self._guard.active = True
        try:
            tid = self._tid()
            obj_rep = self.registry.rep_of(obj)
            value_rep = self.rep(value)
            with self._lock:
                self.builder.record_get(tid, obj_rep, name, value_rep)
        finally:
            self._guard.active = False


class CaptureResult:
    """Outcome of :func:`trace_call`: the trace plus either the return
    value or the exception the call raised (regressing runs may throw —
    the paper's Derby case aborts during query compilation — and their
    traces are exactly what the analysis needs)."""

    __slots__ = ("trace", "result", "error")

    def __init__(self, trace: Trace, result=None,
                 error: BaseException | None = None):
        self.trace = trace
        self.result = result
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None


def trace_call(func, *args, name: str = "",
               filter: TraceFilter | None = None,
               record_fields: bool = True, key_table=None,
               **kwargs) -> CaptureResult:
    """Run ``func(*args, **kwargs)`` under a fresh tracer.

    Exceptions raised by the call are captured in the result rather than
    propagated, so traces of failing (regressing) runs remain available.
    """
    tracer = Tracer(name=name, filter=filter, record_fields=record_fields,
                    key_table=key_table)
    error: BaseException | None = None
    result = None
    with tracer:
        try:
            result = func(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - capture, do not swallow silently
            error = exc
    return CaptureResult(tracer.trace(), result=result, error=error)
