"""Trace capture for live Python programs.

This package is the reproduction's substitute for RPRISM's AspectJ
load-time weaving: it intercepts the same event families at runtime —
method calls and returns via ``sys.settrace`` / ``threading.settrace``,
object creation and field reads/writes via the :func:`traced` class
decorator, and thread forks by instrumenting ``threading.Thread.start`` —
and records them through the same :class:`repro.core.traces.TraceBuilder`
the formal semantics uses.  Pointcut-style include/exclude filters select
which modules are woven into the trace.
"""

from repro.capture.filters import TraceFilter
from repro.capture.objects import traced
from repro.capture.segments import SegmentedTraceWriter, load_segments
from repro.capture.tracer import Tracer, current_tracer, trace_call
from repro.capture.values import live_value_rep

__all__ = [
    "SegmentedTraceWriter", "TraceFilter", "Tracer", "current_tracer",
    "live_value_rep", "load_segments", "trace_call", "traced",
]
