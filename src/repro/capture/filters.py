"""Pointcut-style trace filters.

RPRISM uses AspectJ pointcuts to select which parts of the program are
woven into the trace ("trace size was optimized by leveraging AspectJ
pointcuts to exclude the internal workings of unrelated code, such as
libraries and data structures").  ``TraceFilter`` reproduces that control:
modules are selected by prefix include/exclude lists, and individual
methods can be excluded by qualified-name prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Modules whose internals are never traced (the tracing machinery itself
#: and interpreter plumbing).
ALWAYS_EXCLUDED_MODULES = (
    "repro.capture", "repro.core", "repro.analysis", "threading",
    "importlib", "_bootstrap", "contextlib", "typing", "abc",
)


@dataclass(slots=True)
class TraceFilter:
    """Decides which code joins the trace.

    ``include_modules`` — module-name prefixes to trace; empty means
    "trace everything not excluded".  ``exclude_modules`` adds further
    exclusions on top of the built-in ones.  ``exclude_methods`` filters
    qualified method names (``Class.method`` or ``module.function``).
    """

    include_modules: tuple[str, ...] = ()
    exclude_modules: tuple[str, ...] = ()
    exclude_methods: tuple[str, ...] = ()

    _include: tuple[str, ...] = field(init=False, default=())

    def __post_init__(self):
        self._include = tuple(self.include_modules)

    def admits_module(self, module_name: str | None) -> bool:
        if not module_name:
            return False
        for prefix in ALWAYS_EXCLUDED_MODULES:
            if module_name.startswith(prefix):
                return False
        for prefix in self.exclude_modules:
            if module_name.startswith(prefix):
                return False
        if not self._include:
            return True
        return any(module_name.startswith(prefix)
                   for prefix in self._include)

    def admits_method(self, qualified_name: str) -> bool:
        return not any(qualified_name.startswith(prefix)
                       for prefix in self.exclude_methods)
