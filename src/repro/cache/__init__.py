"""``repro.cache`` — content-addressed memoisation of trace diffs.

See :mod:`repro.cache.diffcache` for the design; this package front
door re-exports the working set:

* :class:`DiffCache` / :class:`CacheStats` — the two-tier cache.
* :func:`cached_engine_diff` — the driver choke point (consult, then
  compute-and-store).
* :func:`cache_key` / :func:`canonical_config` — the key discipline,
  exposed for tests and tooling.
* :class:`SegmentCache` / :func:`segment_digest` / :func:`segment_key`
  — gap-granular memoisation for anchored segmental diffing
  (:mod:`repro.cache.segments`).
"""

from repro.cache.diffcache import (DEFAULT_MEMORY_ENTRIES, CacheStats,
                                   DiffCache, cache_key, cached_engine_diff,
                                   canonical_config)
from repro.cache.segments import (SegmentCache, segment_digest, segment_key,
                                  shift_result_wire)

__all__ = [
    "DEFAULT_MEMORY_ENTRIES", "CacheStats", "DiffCache", "SegmentCache",
    "cache_key", "cached_engine_diff", "canonical_config", "segment_digest",
    "segment_key", "shift_result_wire",
]
