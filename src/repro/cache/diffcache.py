"""Content-addressed memoisation of trace diffs.

The paper's premise is that ``=e`` equivalence makes trace comparison
cheap and *repeatable*: the same trace pair, diffed with the same
engine and configuration, always produces the same result.  This module
turns that determinism into throughput — a :class:`DiffCache` memoises
:class:`~repro.core.diffs.DiffResult`\\ s keyed by

``(content_digest(left), content_digest(right), engine name,
canonicalised ViewDiffConfig)``

with two tiers:

* an **in-memory LRU** (wire dicts, not result objects — hits are
  always rehydrated against the *caller's* traces, so a cached result
  never pins old trace objects and its sequences reference the very
  entries the caller holds), and
* an optional **persistent disk tier**: one JSON file per entry in a
  directory, conventionally ``<trace store>/diffcache`` (atomic
  write-to-temp + ``os.replace``; prune/clear serialise through the
  store layer's :func:`~repro.api.store.locked_file` discipline).
  A truncated or hand-edited entry reads as a *miss*, never an error.

Correctness rests on two contracts, both documented at their homes:

* :meth:`Trace.content_digest` covers everything the differencing
  semantics can read from an entry (not just the ``=e`` key — the
  cheap shape :meth:`Trace.fingerprint` collides exactly where a cache
  must not), and traces are immutable by convention, so a digest is
  computed once per trace object.
* Engines must *opt in* via a truthy ``cacheable`` attribute
  (:func:`repro.api.engines.is_cacheable`): the built-ins are pure
  functions of (traces, config), third-party engines are assumed
  stateful until they say otherwise.

Thread safety: one lock guards the memory tier and the counters, disk
writes are atomic, so one handle may be shared by every job of a
pipeline batch across thread *and* process executors (captures run in
workers; diffs — and therefore cache lookups — run on the job threads
of the parent, all hitting this one handle; separate processes sharing
a directory meet through the disk tier).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from itertools import count
from pathlib import Path

from repro.core.diffs import DiffResult, result_from_wire, result_to_wire
from repro.core.traces import Trace
from repro.core.view_diff import ViewDiffConfig

#: Default capacity of the in-memory LRU tier.
DEFAULT_MEMORY_ENTRIES = 256

#: Suffix of on-disk cache entries.
ENTRY_SUFFIX = ".json"

#: Sidecar lock serialising prune/clear against concurrent writers.
CACHE_LOCK_NAME = "cache.lock"

#: Per-process uniquifier for temp entry files (pid alone is not
#: enough: one process may write from several threads).
_TMP_SEQ = count()


def canonical_config(config: ViewDiffConfig | None) -> str:
    """A :class:`ViewDiffConfig` as canonical, order-stable text.

    ``None`` (engine default) and an explicit default-constructed
    config canonicalise identically; every semantic field participates
    — the cache never guesses which knobs an engine actually reads, so
    a changed knob is a changed key (a conservative miss, never a
    wrong hit).  The one exception is ``kernel``: backends are
    bit-identical and compare-count-transparent by contract
    (:mod:`repro.core.kernels`), so the kernel choice must *not*
    fragment keys — a result computed under one backend is a valid
    hit under any other.
    """
    if config is None:
        config = ViewDiffConfig()
    plain = dataclasses.asdict(config)
    plain.pop("kernel", None)
    plain["view_types"] = [vt.name for vt in config.view_types]
    return json.dumps(plain, sort_keys=True, separators=(",", ":"))


def cache_key(left: Trace, right: Trace, engine_name: str,
              config: ViewDiffConfig | None) -> str:
    """The composite content-addressed key of one diff."""
    blob = "|".join((left.content_digest(), right.content_digest(),
                     engine_name, canonical_config(config)))
    return hashlib.blake2b(blob.encode("utf-8"),
                           digest_size=16).hexdigest()


@dataclass(slots=True)
class CacheStats:
    """One snapshot of a :class:`DiffCache`'s counters and footprint."""

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    stores: int = 0
    memory_entries: int = 0
    memory_capacity: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0
    path: str = ""

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    def render(self) -> str:
        where = self.path or "(memory only)"
        lines = [f"diff cache at {where}"]
        if self.path:
            lines.append(f"  disk:    {self.disk_entries} entr(ies), "
                         f"{self.disk_bytes} bytes")
        lines.append(f"  memory:  {self.memory_entries}/"
                     f"{self.memory_capacity} entr(ies)")
        # Counters are per-handle; a fresh handle (the CLI) has none.
        if self.hits or self.misses or self.stores:
            lines.append(f"  hits:    {self.hits} ({self.hits_memory} "
                         f"memory, {self.hits_disk} disk)")
            lines.append(f"  misses:  {self.misses}")
            lines.append(f"  stores:  {self.stores}")
        return "\n".join(lines)


class DiffCache:
    """Two-tier memoisation of diff results (see module docstring).

    ``path=None`` keeps the cache purely in memory; a path adds the
    persistent tier (the directory is created on first use).
    """

    def __init__(self, path: "str | Path | None" = None, *,
                 max_memory_entries: int = DEFAULT_MEMORY_ENTRIES,
                 sharded: "bool | None" = None):
        self.path = None if path is None else Path(path)
        # Sharded disk tier: entries live under <path>/<hh>/ (the first
        # two hex chars of the entry key), matching the sharded trace
        # store so a million-entry cache never piles one directory
        # full.  ``None`` auto-detects from the directory on disk;
        # flat entries remain readable either way (a sharded cache
        # falls back to the flat path on a miss, so turning sharding on
        # never invalidates what's already cached).
        if sharded is None:
            sharded = self.path is not None and any(
                self._is_shard_dir(p) for p in self._subdirs())
        self.sharded = bool(sharded) and self.path is not None
        self.max_memory_entries = max(1, max_memory_entries)
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits_memory = 0
        self._hits_disk = 0
        self._misses = 0
        self._stores = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.path) if self.path else "memory"
        return f"DiffCache({where!r}, {len(self._memory)} hot entr(ies))"

    @property
    def hits(self) -> int:
        """Lifetime hit count of this handle (both tiers) — cheap, no
        disk scan, so callers may delta it around a single lookup."""
        with self._lock:
            return self._hits_memory + self._hits_disk

    # -- keys ----------------------------------------------------------------

    def key_for(self, left: Trace, right: Trace, engine_name: str,
                config: ViewDiffConfig | None) -> str:
        return cache_key(left, right, engine_name, config)

    # -- lookup --------------------------------------------------------------

    def get(self, key: str, left: Trace, right: Trace) -> DiffResult | None:
        """The cached result under ``key``, rehydrated over the
        caller's traces; ``None`` on a miss (including corrupt or
        version-skewed disk entries)."""
        return self.get_via(
            key, lambda wire: result_from_wire(wire, left, right))

    def get_via(self, key: str, rehydrate) -> DiffResult | None:
        """The one lookup path, parameterised over rehydration.

        ``rehydrate`` receives the stored *result wire* and returns
        the rehydrated result, raising ``ValueError`` when the wire
        does not fit the caller's traces (the segment cache rebases
        entry ids first, so its notion of "fits" differs from
        :meth:`get`'s).  A rehydration failure is a counted miss —
        digest collision or tampered entry, never an error and never a
        corrupt result — and the entry is dropped from the memory
        tier.
        """
        with self._lock:
            wire = self._memory.get(key)
            if wire is not None:
                self._memory.move_to_end(key)
        from_memory = wire is not None
        if wire is None:
            wire = self._disk_read(key)
        if wire is None:
            with self._lock:
                self._misses += 1
            return None
        try:
            result = rehydrate(wire.get("result"))
        except ValueError:
            with self._lock:
                self._memory.pop(key, None)
                self._misses += 1
            return None
        with self._lock:
            if from_memory:
                self._hits_memory += 1
            else:
                self._hits_disk += 1
                self._remember(key, wire)
        return result

    # -- store ---------------------------------------------------------------

    def put(self, key: str, result: DiffResult,
            counter_totals: "tuple[int, int] | None" = None) -> None:
        """Memoise ``result`` under ``key`` in both tiers.

        ``counter_totals`` is this diff's own ``(compares, charged)``
        cost when ``result.counter`` is a caller's shared accumulator
        (see :func:`~repro.core.diffs.result_to_wire`)."""
        self.put_wire(key, result_to_wire(result,
                                          counter_totals=counter_totals),
                      engine=result.algorithm)

    def put_wire(self, key: str, result_wire: dict,
                 engine: str = "") -> None:
        """Memoise an already-encoded result wire under ``key`` (the
        wire-level twin of :meth:`put`)."""
        wire = {
            "key": key,
            "engine": engine,
            "created": time.time(),
            "result": result_wire,
        }
        with self._lock:
            self._remember(key, wire)
            self._stores += 1
        self._disk_write(key, wire)

    def _remember(self, key: str, wire: dict) -> None:
        """Insert into the LRU (caller holds the lock)."""
        self._memory[key] = wire
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # -- disk tier -----------------------------------------------------------

    @staticmethod
    def _is_shard_dir(path: Path) -> bool:
        name = path.name
        return (len(name) == 2 and path.is_dir()
                and all(c in "0123456789abcdef" for c in name))

    def _subdirs(self) -> list[Path]:
        if self.path is None or not self.path.is_dir():
            return []
        return [p for p in self.path.iterdir() if p.is_dir()]

    def _entry_path(self, key: str) -> Path:
        if self.sharded:
            return self.path / key[:2] / (key + ENTRY_SUFFIX)
        return self.path / (key + ENTRY_SUFFIX)

    def _read_wire(self, path: Path, key: str) -> dict | None:
        try:
            wire = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None  # absent, truncated, or garbled: a plain miss
        if not isinstance(wire, dict) or wire.get("key") != key:
            return None
        return wire

    def _disk_read(self, key: str) -> dict | None:
        if self.path is None:
            return None
        wire = self._read_wire(self._entry_path(key), key)
        if wire is None and self.sharded:
            # Entries written before this cache went sharded sit at the
            # flat root; they stay readable rather than recomputed.
            wire = self._read_wire(self.path / (key + ENTRY_SUFFIX), key)
        return wire

    def _disk_write(self, key: str, wire: dict) -> None:
        """Best-effort persist: a cache that cannot write (read-only
        store directory, full disk) must never fail a diff that already
        computed — the entry just stays memory-only."""
        if self.path is None:
            return
        try:
            target = self._entry_path(key)
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = target.with_name(
                f".{target.name}.{os.getpid()}.{next(_TMP_SEQ)}.tmp")
            try:
                tmp.write_text(json.dumps(wire, sort_keys=True) + "\n",
                               encoding="utf-8")
                os.replace(tmp, target)
            finally:
                if tmp.exists():
                    tmp.unlink()
        except OSError:
            pass

    def _disk_entries(self) -> list[Path]:
        if self.path is None or not self.path.is_dir():
            return []
        entries = [p for p in self.path.glob("*" + ENTRY_SUFFIX)
                   if not p.name.startswith(".")]
        for shard in self._subdirs():
            if self._is_shard_dir(shard):
                entries.extend(p for p in shard.glob("*" + ENTRY_SUFFIX)
                               if not p.name.startswith("."))
        return sorted(entries)

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> CacheStats:
        """Counters (this handle) plus disk footprint (shared)."""
        entries = self._disk_entries()
        disk_bytes = 0
        for path in entries:
            try:
                disk_bytes += path.stat().st_size
            except OSError:  # pruned underneath the scan
                continue
        with self._lock:
            return CacheStats(
                hits_memory=self._hits_memory,
                hits_disk=self._hits_disk,
                misses=self._misses,
                stores=self._stores,
                memory_entries=len(self._memory),
                memory_capacity=self.max_memory_entries,
                disk_entries=len(entries),
                disk_bytes=disk_bytes,
                path="" if self.path is None else str(self.path),
            )

    def _maintenance_lock(self):
        from repro.api.store import locked_file
        self.path.mkdir(parents=True, exist_ok=True)
        return locked_file(self.path / CACHE_LOCK_NAME)

    def prune(self, max_entries: int | None = None,
              max_age_seconds: float | None = None) -> int:
        """Drop disk entries beyond ``max_entries`` (oldest first by
        mtime) and/or older than ``max_age_seconds``; returns how many
        were removed.  The memory tier is cleared too so a pruned entry
        cannot be resurrected from it."""
        if self.path is None:
            with self._lock:
                removed = len(self._memory)
                self._memory.clear()
            return removed
        removed = 0
        with self._maintenance_lock():
            entries = [(path, path.stat().st_mtime)
                       for path in self._disk_entries()]
            entries.sort(key=lambda item: item[1])  # oldest first
            doomed = []
            if max_age_seconds is not None:
                horizon = time.time() - max_age_seconds
                doomed.extend(p for p, mtime in entries if mtime < horizon)
            if max_entries is not None:
                aged_out = set(doomed)
                survivors = [p for p, _ in entries if p not in aged_out]
                if len(survivors) > max_entries:
                    doomed.extend(
                        survivors[:len(survivors) - max_entries])
            for path in doomed:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        with self._lock:
            self._memory.clear()
        return removed

    def clear(self) -> int:
        """Remove every entry from both tiers; returns the number of
        disk entries removed."""
        removed = 0
        if self.path is not None and self.path.is_dir():
            with self._maintenance_lock():
                for path in self._disk_entries():
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        continue
        with self._lock:
            self._memory.clear()
        return removed


def cached_engine_diff(cache: "DiffCache | None", engine, left: Trace,
                       right: Trace, *, config=None, counter=None,
                       budget=None, **kwargs) -> DiffResult:
    """Run ``engine.diff`` through ``cache``.

    The one choke point every driver (``Session.diff``, the workload
    harness, the CLI) routes through: consult the cache before any
    planning, compute-and-store on a miss, and bypass caching entirely
    when there is no cache or the engine does not advertise
    ``cacheable``.  Calls carrying a ``budget`` also bypass the cache:
    a budget changes observable behaviour (``LcsMemoryError``, peak
    cells) without being part of the configuration key, and its
    high-water accumulator must reflect work actually done — serving a
    generous run's result under a tight budget would mask the paper's
    out-of-memory failure.  On a hit a caller-supplied ``counter`` is
    credited with the cold run's totals, so batch aggregates (the
    paper's compare-count metric) stay identical between cold and warm
    runs.

    Engines whose ``diff`` accepts a ``cache`` keyword (the anchored
    segmental engines) are additionally handed the cache handle on the
    compute path, so a whole-result *miss* can still hit at segment
    granularity — an edited scenario re-diffs only the gaps that
    changed.
    """
    from repro.api.engines import accepts_kwarg, is_cacheable

    def compute() -> DiffResult:
        return engine.diff(left, right, config=config, counter=counter,
                           budget=budget, **kwargs)

    if cache is None or budget is not None or not is_cacheable(engine):
        return compute()
    if accepts_kwarg(engine, "cache"):
        kwargs.setdefault("cache", cache)
    key = cache.key_for(left, right, engine.name, config)
    hit = cache.get(key, left, right)
    if hit is not None:
        if counter is not None:
            counter.bump(hit.counter.compares)
            counter.charge(hit.counter.charged)
        return hit
    # ``counter`` may be a shared accumulator spanning many diffs (the
    # harness drives one counter through six); the cache entry must
    # record only *this* diff's cost, so measure the delta around the
    # computation.
    before = (counter.compares, counter.charged) \
        if counter is not None else None
    result = compute()
    if before is not None and result.counter is counter:
        totals = (counter.compares - before[0],
                  counter.charged - before[1])
    else:  # the engine kept its own (fresh, per-diff) counter
        totals = (result.counter.compares, result.counter.charged)
    cache.put(key, result, counter_totals=totals)
    return result
