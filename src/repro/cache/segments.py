"""Segment-granular diff memoisation.

The whole-result tier of :class:`~repro.cache.diffcache.DiffCache` is
keyed by the *full* traces' content digests: edit one scenario line and
every cached result of that trace misses.  Anchored segmental diffing
(:mod:`repro.core.anchors`) restores locality — each divergent gap is a
self-contained sub-diff — and this module gives those gaps their own
cache identity:

* :func:`segment_digest` — a *position-relative* content digest of a
  gap sub-trace, built from the same entry material as
  :meth:`~repro.core.traces.Trace.content_digest` but with every entry
  id rebased to the gap's first entry.  An edit early in a scenario
  shifts the absolute ``eid`` of every later entry; rebasing keeps the
  digests of unchanged gaps stable, so a warm rerun recomputes only the
  gaps whose *content* changed.
* :class:`SegmentCache` — a thin adapter over a shared
  :class:`DiffCache` handle that stores each gap's result wire with
  eids rebased the same way and re-absolutises them on a hit against
  the caller's gap sub-traces.  Stored totals carry the gap's cold
  ``(compares, charged)`` cost, so warm reruns credit the caller's
  :class:`~repro.core.lcs.OpCounter` per segment.

Both tiers share one directory/LRU — segment keys are prefixed so they
can never collide with whole-result keys.
"""

from __future__ import annotations

import hashlib

from repro.cache.diffcache import DiffCache, canonical_config
from repro.core.diffs import DiffResult, result_from_wire, result_to_wire
from repro.core.traces import Trace
from repro.core.view_diff import ViewDiffConfig


def segment_digest(trace: Trace) -> str:
    """Position-relative content digest of a (gap sub-)trace.

    Covers the same entry material as
    :meth:`~repro.core.traces.Trace.content_digest` — thread ids,
    methods, active objects, full events — but rebases each entry id to
    the segment's first entry, so equal gap content digests equal
    regardless of where in the full trace the gap sits.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(b"segment-content-v1;")
    entries = trace.entries
    digest.update(len(entries).to_bytes(8, "little"))
    base = entries[0].eid if entries else 0
    for entry in entries:
        digest.update(
            f"{entry.eid - base}|{entry.tid}|{entry.method}|"
            f"{entry.active!r}|{entry.event!r};".encode("utf-8", "replace"))
    return digest.hexdigest()


def segment_key(left: Trace, right: Trace, engine_name: str,
                config: ViewDiffConfig | None) -> str:
    """The content-addressed key of one gap diff (namespaced apart from
    whole-result keys)."""
    blob = "|".join(("segment", segment_digest(left),
                     segment_digest(right), engine_name,
                     canonical_config(config)))
    return hashlib.blake2b(blob.encode("utf-8"),
                           digest_size=16).hexdigest()


def _shift_eid(eid: int, delta: int) -> int:
    # The EOF sentinel (eid -1) is positionless; never rebase it.
    return eid if eid < 0 else eid + delta


def shift_result_wire(wire: dict, left_delta: int,
                      right_delta: int) -> dict:
    """A copy of a result wire with every entry id shifted — the
    rebasing that makes segment cache entries position-independent
    (store with negative deltas, load with positive ones)."""
    shifted = dict(wire)
    shifted["similar_left"] = [_shift_eid(e, left_delta)
                               for e in wire["similar_left"]]
    shifted["similar_right"] = [_shift_eid(e, right_delta)
                                for e in wire["similar_right"]]
    shifted["match_pairs"] = [[_shift_eid(l, left_delta),
                               _shift_eid(r, right_delta)]
                              for l, r in wire["match_pairs"]]
    shifted["anchor_pairs"] = [[_shift_eid(l, left_delta),
                                _shift_eid(r, right_delta)]
                               for l, r in wire["anchor_pairs"]]
    shifted["sequences"] = [
        {"kind": seq["kind"],
         "left": [_shift_eid(e, left_delta) for e in seq["left"]],
         "right": [_shift_eid(e, right_delta) for e in seq["right"]]}
        for seq in wire["sequences"]]
    return shifted


class SegmentCache:
    """Gap-granular memoisation over a shared :class:`DiffCache`.

    One adapter per diff; the underlying handle (and its directory and
    LRU) is the same one the whole-result tier uses, so pipelines that
    share a cache share segment entries too.
    """

    def __init__(self, cache: DiffCache):
        self.cache = cache

    def key_for(self, left: Trace, right: Trace, engine_name: str,
                config: ViewDiffConfig | None) -> str:
        return segment_key(left, right, engine_name, config)

    @staticmethod
    def _bases(left: Trace, right: Trace) -> tuple[int, int]:
        return (left.entries[0].eid if left.entries else 0,
                right.entries[0].eid if right.entries else 0)

    def get(self, key: str, left: Trace, right: Trace
            ) -> DiffResult | None:
        """The cached gap result, re-absolutised against the caller's
        gap sub-traces; ``None`` on a (counted) miss, including
        entries that do not rehydrate."""
        base_l, base_r = self._bases(left, right)

        def rehydrate(raw) -> DiffResult:
            try:
                shifted = shift_result_wire(raw, base_l, base_r)
            except (KeyError, TypeError) as error:
                raise ValueError(
                    f"malformed segment wire: {error}") from None
            return result_from_wire(shifted, left, right)

        return self.cache.get_via(key, rehydrate)

    def put(self, key: str, result: DiffResult, left: Trace,
            right: Trace,
            counter_totals: "tuple[int, int] | None" = None) -> None:
        """Store one gap result, rebased to segment-relative ids.

        ``counter_totals`` is the gap's own cold ``(compares,
        charged)`` cost (the caller measures it around the inner
        engine run); hits credit it back per segment.
        """
        base_l, base_r = self._bases(left, right)
        wire = shift_result_wire(
            result_to_wire(result, counter_totals=counter_totals),
            -base_l, -base_r)
        self.cache.put_wire(key, wire, engine=result.algorithm)
