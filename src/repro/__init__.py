"""rPRISM — semantics-aware trace analysis.

A from-scratch reproduction of *Semantics-Aware Trace Analysis*
(Hoffman, Eugster & Jagannathan, PLDI 2009): semantic views over execution
traces, linear-time views-based trace differencing, and regression-cause
analysis, together with a formal trace-emitting core language, a Python
trace-capture substrate, and the evaluation workloads.

Typical use (the :mod:`repro.api` session layer)::

    from repro.api import Session

    session = (Session()
               .with_filter(include_modules=("myapp",))
               .with_engine("views"))
    result = session.run_scenario(
        old_version_entrypoint, new_version_entrypoint,
        regressing_input=bad_input, correct_input=good_input)
    print(result.render())

Lower-level pieces remain directly importable: ``session.capture`` /
``session.diff`` drive individual steps, ``repro.api.TraceStore``
persists traces for offline analysis, ``repro.api.ScenarioPipeline``
batches scenarios across a worker pool, and the legacy ``RPrism``
facade still works (it delegates to a ``Session``).
"""

from repro.core import (DiffResult, DifferenceSequence, OpCounter,
                        RegressionReport, Trace, TraceBuilder, TraceEntry,
                        ValueRep, ViewDiffConfig, ViewType, ViewWeb,
                        analyze_regression, lcs_diff, view_diff)

__version__ = "2.0.0"

__all__ = [
    "DiffResult", "DifferenceSequence", "OpCounter", "RegressionReport",
    "RPrism", "Session", "SessionResult", "Trace", "TraceBuilder",
    "TraceEntry", "TraceStore", "ValueRep", "ViewDiffConfig", "ViewType",
    "ViewWeb", "analyze_regression", "lcs_diff", "view_diff",
    "__version__",
]

#: Names served lazily from the api/analysis layers: they pull in the
#: capture substrate, so the core model stays importable in minimal
#: environments.
_LAZY = {
    "RPrism": ("repro.analysis.rprism", "RPrism"),
    "Session": ("repro.api.session", "Session"),
    "SessionResult": ("repro.api.session", "SessionResult"),
    "TraceStore": ("repro.api.store", "TraceStore"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is not None:
        from importlib import import_module
        return getattr(import_module(target[0]), target[1])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
