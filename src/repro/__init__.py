"""rPRISM — semantics-aware trace analysis.

A from-scratch reproduction of *Semantics-Aware Trace Analysis*
(Hoffman, Eugster & Jagannathan, PLDI 2009): semantic views over execution
traces, linear-time views-based trace differencing, and regression-cause
analysis, together with a formal trace-emitting core language, a Python
trace-capture substrate, and the evaluation workloads.

Typical use::

    from repro import RPrism

    tool = RPrism()
    old = tool.trace_call(old_version_entrypoint, name="old")
    new = tool.trace_call(new_version_entrypoint, name="new")
    result = tool.diff(old, new)
    print(result.render())
"""

from repro.core import (DiffResult, DifferenceSequence, OpCounter,
                        RegressionReport, Trace, TraceBuilder, TraceEntry,
                        ValueRep, ViewDiffConfig, ViewType, ViewWeb,
                        analyze_regression, lcs_diff, view_diff)

__version__ = "1.0.0"

__all__ = [
    "DiffResult", "DifferenceSequence", "OpCounter", "RegressionReport",
    "RPrism", "Trace", "TraceBuilder", "TraceEntry", "ValueRep",
    "ViewDiffConfig", "ViewType", "ViewWeb", "analyze_regression",
    "lcs_diff", "view_diff", "__version__",
]


def __getattr__(name: str):
    # RPrism pulls in the capture layer; import lazily so the core model
    # stays importable in minimal environments.
    if name == "RPrism":
        from repro.analysis.rprism import RPrism
        return RPrism
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
