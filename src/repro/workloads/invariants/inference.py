"""Falsification-based invariant inference (the Daikon core loop)."""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.invariants.invariants import (BINARY_TEMPLATES,
                                                   UNARY_TEMPLATES,
                                                   Invariant)
from repro.workloads.invariants.model import ProgramPoint, RunData


@traced
class InvariantDetector:
    """Instantiates candidate invariants over a program point's variables
    and feeds every sample through them; survivors that pass the
    justification test are reported."""

    def __init__(self, run: RunData):
        self.run = run
        self.detected = {}

    def candidates_for(self, point: ProgramPoint) -> list[Invariant]:
        candidates: list[Invariant] = []
        names = point.variables
        for index, name in enumerate(names):
            for template in UNARY_TEMPLATES:
                candidates.append(_SlottedInvariant(
                    template(point.name, (name,)), (index,)))
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                for template in BINARY_TEMPLATES:
                    candidates.append(_SlottedInvariant(
                        template(point.name, (names[i], names[j])),
                        (i, j)))
        return candidates

    def detect_at(self, point_name: str) -> list[Invariant]:
        point = self.run.points[point_name]
        slotted = self.candidates_for(point)
        for sample in self.run.samples_at(point_name):
            for candidate in slotted:
                candidate.feed_sample(sample)
        survivors = [c.invariant for c in slotted
                     if c.invariant.is_justified()]
        self.detected[point_name] = survivors
        return survivors

    def detect_all(self) -> dict[str, list[Invariant]]:
        for point_name in self.run.point_names():
            self.detect_at(point_name)
        return dict(self.detected)

    def __repr__(self):
        return f"InvariantDetector({self.run.name})"


@traced
class _SlottedInvariant:
    """Binds an invariant to the variable slots it watches."""

    def __init__(self, invariant: Invariant, slots: tuple[int, ...]):
        self.invariant = invariant
        self.slots = slots

    def feed_sample(self, sample) -> None:
        values = tuple(sample.value_of(slot) for slot in self.slots)
        self.invariant.feed(values)

    def __repr__(self):
        return f"Slotted({self.invariant.describe()})"


def detect_invariants(run: RunData) -> dict[str, list[Invariant]]:
    """Convenience: full detection over a run."""
    return InvariantDetector(run).detect_all()
