"""Invariant templates (the Daikon invariant lattice, miniaturised).

Each invariant watches one or two variables of a program point, is fed
samples, and is *falsified* the first time a sample contradicts it.  An
invariant that survives all samples and has seen enough of them is
*justified* (Daikon's confidence test, simplified to a sample-count
threshold)."""

from __future__ import annotations

from repro.capture import traced

#: Minimum samples before a surviving invariant is considered justified.
JUSTIFICATION_THRESHOLD = 3


@traced
class Invariant:
    """Base invariant over one or two variable slots."""

    def __init__(self, point_name: str, var_names: tuple[str, ...]):
        self.point_name = point_name
        self.var_names = var_names
        self.falsified = False
        self.samples_seen = 0

    # -- protocol ----------------------------------------------------------

    def feed(self, values: tuple) -> None:
        if self.falsified:
            return
        self.samples_seen = self.samples_seen + 1
        if not self.holds(values):
            self.falsified = True

    def holds(self, values: tuple) -> bool:
        raise NotImplementedError

    def is_justified(self) -> bool:
        return (not self.falsified
                and self.samples_seen >= JUSTIFICATION_THRESHOLD)

    def describe(self) -> str:
        raise NotImplementedError

    def identity(self) -> tuple:
        """Cross-run identity: kind + point + variables + parameters."""
        return (type(self).__name__, self.point_name, self.var_names,
                self.parameters())

    def parameters(self) -> tuple:
        return ()

    def __repr__(self):
        state = "justified" if self.is_justified() else (
            "falsified" if self.falsified else "pending")
        return f"{self.describe()} [{state}]"


@traced
class ConstantInvariant(Invariant):
    """``x == c`` where ``c`` is the first observed value."""

    def __init__(self, point_name: str, var_names: tuple[str, ...]):
        super().__init__(point_name, var_names)
        self.constant = None
        self.seeded = False

    def holds(self, values: tuple) -> bool:
        value = values[0]
        if not self.seeded:
            self.constant = value
            self.seeded = True
            return True
        return value == self.constant

    def parameters(self) -> tuple:
        return (self.constant,)

    def describe(self) -> str:
        return f"{self.var_names[0]} == {self.constant!r}"


@traced
class RangeInvariant(Invariant):
    """``lo <= x <= hi`` with bounds tightened to the observations."""

    def __init__(self, point_name: str, var_names: tuple[str, ...]):
        super().__init__(point_name, var_names)
        self.low = None
        self.high = None

    def holds(self, values: tuple) -> bool:
        value = values[0]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value
        return True

    def parameters(self) -> tuple:
        # Bounds are derived, not identity: two runs with different
        # observed ranges still track "the same" invariant.
        return ()

    def describe(self) -> str:
        return f"{self.var_names[0]} in [{self.low}..{self.high}]"


@traced
class NonZeroInvariant(Invariant):
    """``x != 0``."""

    def holds(self, values: tuple) -> bool:
        value = values[0]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        return value != 0

    def describe(self) -> str:
        return f"{self.var_names[0]} != 0"


@traced
class NonNullInvariant(Invariant):
    """``x is not None``."""

    def holds(self, values: tuple) -> bool:
        return values[0] is not None

    def describe(self) -> str:
        return f"{self.var_names[0]} != null"


@traced
class EqualityInvariant(Invariant):
    """``x == y`` over a variable pair."""

    def holds(self, values: tuple) -> bool:
        return values[0] == values[1]

    def describe(self) -> str:
        return f"{self.var_names[0]} == {self.var_names[1]}"


@traced
class LessEqualInvariant(Invariant):
    """``x <= y`` over a variable pair."""

    def holds(self, values: tuple) -> bool:
        a, b = values
        if isinstance(a, bool) or isinstance(b, bool):
            return False
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        return a <= b

    def describe(self) -> str:
        return f"{self.var_names[0]} <= {self.var_names[1]}"


#: Unary and binary template factories, in reporting order.
UNARY_TEMPLATES = (ConstantInvariant, RangeInvariant, NonZeroInvariant,
                   NonNullInvariant)
BINARY_TEMPLATES = (EqualityInvariant, LessEqualInvariant)
