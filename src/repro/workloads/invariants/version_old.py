"""Original (correct) XorVisitor predicates.

An invariant belongs to the xor output when it is justified on exactly
one side of the pair.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.invariants.diffing import InvariantPair


@traced
class XorPredicates:
    """The correct shouldAddInv1 / shouldAddInv2 pair."""

    def should_add_inv1(self, pair: InvariantPair) -> bool:
        return pair.inv1 is not None and pair.inv2 is None

    def should_add_inv2(self, pair: InvariantPair) -> bool:
        return pair.inv2 is not None and pair.inv1 is None

    def __repr__(self):
        return "XorPredicates(v1)"
