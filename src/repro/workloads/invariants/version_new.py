"""Newer XorVisitor predicates — with the regression.

The new version introduces a legitimate feature — suppressing invariants
that are not "worth printing" (too few samples) — but the edit botched
*both* predicates, mirroring the paper's description of the Daikon
regression (changes to ``shouldAddInv1`` and ``shouldAddInv2`` in
``daikon.diff.XorVisitor``; the outdated ``testXor`` exhibits it):

* ``should_add_inv1`` gained the worth-printing condition (benign in
  intent, part of the feature);
* ``should_add_inv2`` was edited to test ``pair.inv1``'s printability
  instead of ``pair.inv2``'s — a wrong-variable typo.  Since ``inv1`` is
  ``None`` for the inv2-only pairs the predicate exists to catch, those
  invariants are silently dropped from the xor output.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.invariants.diffing import InvariantPair
from repro.workloads.invariants.invariants import Invariant

#: The new feature's printability threshold.
WORTH_PRINTING_SAMPLES = 4


def worth_printing(invariant: Invariant | None) -> bool:
    """The new feature: only report invariants with enough support."""
    return (invariant is not None
            and invariant.samples_seen >= WORTH_PRINTING_SAMPLES)


@traced
class XorPredicates:
    """The regressing shouldAddInv1 / shouldAddInv2 pair."""

    def should_add_inv1(self, pair: InvariantPair) -> bool:
        return (pair.inv1 is not None and pair.inv2 is None
                and worth_printing(pair.inv1))

    def should_add_inv2(self, pair: InvariantPair) -> bool:
        # BUG: tests inv1's printability; inv1 is None exactly when this
        # predicate should fire, so inv2-only invariants vanish.
        return (pair.inv2 is not None and pair.inv1 is None
                and worth_printing(pair.inv1))

    def __repr__(self):
        return "XorPredicates(v2)"
