"""Invariant diffing with visitors (daikon.diff, miniaturised).

Two runs' invariants are paired by identity into :class:`InvariantPair`
nodes; visitors walk the pairs.  ``XorVisitor`` collects invariants that
appear in exactly one run — Daikon's symmetric difference — deciding
membership through its two predicates ``should_add_inv1`` and
``should_add_inv2``.  Those two methods are precisely where the paper's
Daikon regression lives; the version modules supply their (correct or
regressing) implementations.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.invariants.inference import detect_invariants
from repro.workloads.invariants.invariants import Invariant
from repro.workloads.invariants.model import RunData


@traced
class InvariantPair:
    """The same-identity invariant from run 1 and run 2 (either side may
    be missing)."""

    def __init__(self, key: tuple, inv1: Invariant | None,
                 inv2: Invariant | None):
        self.key = key
        self.inv1 = inv1
        self.inv2 = inv2

    def __repr__(self):
        left = self.inv1.describe() if self.inv1 else "-"
        right = self.inv2.describe() if self.inv2 else "-"
        return f"Pair({left} | {right})"


@traced
class PairNode:
    """All pairs of one program point."""

    def __init__(self, point_name: str):
        self.point_name = point_name
        self.pairs = []

    def add(self, pair: InvariantPair) -> None:
        self.pairs = self.pairs + [pair]

    def __repr__(self):
        return f"PairNode({self.point_name}, {len(self.pairs)} pairs)"


def build_pair_tree(run1: RunData, run2: RunData) -> list[PairNode]:
    """Pair both runs' justified invariants by identity, per point."""
    inv1_by_point = detect_invariants(run1)
    inv2_by_point = detect_invariants(run2)
    nodes: list[PairNode] = []
    all_points = list(dict.fromkeys(
        list(inv1_by_point) + list(inv2_by_point)))
    for point_name in all_points:
        node = PairNode(point_name)
        left = {inv.identity(): inv
                for inv in inv1_by_point.get(point_name, [])}
        right = {inv.identity(): inv
                 for inv in inv2_by_point.get(point_name, [])}
        for key in dict.fromkeys(list(left) + list(right)):
            node.add(InvariantPair(key, left.get(key), right.get(key)))
        nodes.append(node)
    return nodes


@traced
class Visitor:
    """Base visitor over the pair tree."""

    def visit_node(self, node: PairNode) -> None:
        for pair in node.pairs:
            self.visit_pair(pair)

    def visit_pair(self, pair: InvariantPair) -> None:
        raise NotImplementedError

    def walk(self, nodes: list[PairNode]) -> None:
        for node in nodes:
            self.visit_node(node)

    def __repr__(self):
        return type(self).__name__


@traced
class MatchCountVisitor(Visitor):
    """Counts pairs present in both runs (used for churn in the new
    version and as an extra visitor exercising the tree)."""

    def __init__(self):
        self.matches = 0

    def visit_pair(self, pair: InvariantPair) -> None:
        if pair.inv1 is not None and pair.inv2 is not None:
            self.matches = self.matches + 1


@traced
class XorVisitor(Visitor):
    """Collects invariants present in exactly one run.

    ``predicates`` supplies ``should_add_inv1(pair)`` and
    ``should_add_inv2(pair)`` — the two methods whose change caused the
    Daikon regression.  The visitor itself is version-independent.
    """

    def __init__(self, predicates):
        self.predicates = predicates
        self.only_in_run1 = []
        self.only_in_run2 = []

    def visit_pair(self, pair: InvariantPair) -> None:
        if self.predicates.should_add_inv1(pair):
            self.only_in_run1 = self.only_in_run1 + [pair.inv1]
        if self.predicates.should_add_inv2(pair):
            self.only_in_run2 = self.only_in_run2 + [pair.inv2]

    def report(self) -> list[str]:
        lines = []
        for inv in self.only_in_run1:
            lines.append(f"< {inv.point_name}: {inv.describe()}")
        for inv in self.only_in_run2:
            lines.append(f"> {inv.point_name}: {inv.describe()}")
        return lines
