"""The Daikon regression scenario (testXor).

The regressing dataset produces an invariant justified only in the second
run (an *inv2-only* pair): the old XorVisitor reports it, the new one
silently drops it through the wrong-variable typo in ``should_add_inv2``.
The correct (non-regressing) dataset has only inv1-only asymmetries with
ample support, so both versions agree on it.
"""

from __future__ import annotations

from functools import partial

from repro.workloads.invariants.diffing import (MatchCountVisitor,
                                                XorVisitor, build_pair_tree)
from repro.workloads.invariants.model import build_run
from repro.workloads.invariants import version_new, version_old

#: testXor analogue: run2 satisfies result != 0 and y <= result throughout
#: (justified, 5 samples) while run1 falsifies them -> inv2-only pairs.
REGRESSING_DATASET = (
    {
        "Calc.compute:EXIT": (("x", "y", "result"), [
            (1, 1, 0), (2, 2, 0), (3, 3, 0), (4, 4, 0), (5, 5, 0),
        ]),
        "Calc.scale:EXIT": (("n", "factor"), [
            (1, 10), (2, 10), (3, 10), (4, 10),
        ]),
    },
    {
        "Calc.compute:EXIT": (("x", "y", "result"), [
            (1, 2, 3), (2, 3, 5), (3, 4, 7), (4, 5, 9), (5, 6, 11),
        ]),
        "Calc.scale:EXIT": (("n", "factor"), [
            (1, 10), (2, 10), (3, 10), (4, 10),
        ]),
    },
)

#: A similar dataset whose asymmetric invariants are all inv1-only with
#: enough samples: both versions produce the same xor output.
CORRECT_DATASET = (
    {
        "Calc.compute:EXIT": (("x", "y", "result"), [
            (1, 1, 0), (2, 2, 0), (3, 3, 0), (4, 4, 0), (5, 5, 0),
        ]),
        "Calc.scale:EXIT": (("n", "factor"), [
            (1, 10), (2, 10), (3, 10), (4, 10),
        ]),
    },
    {
        "Calc.compute:EXIT": (("x", "y", "result"), [
            (1, 1, 0), (2, 2, 0), (3, 3, 0), (4, 4, 0), (6, 6, 0),
        ]),
        "Calc.scale:EXIT": (("n", "factor"), [
            (1, 10), (2, 10), (3, 10), (4, 10),
        ]),
    },
)


def run_xor_diff(version_module, dataset) -> list[str]:
    """The full pipeline: build both runs, detect invariants, pair them,
    and produce the xor report under the given version's predicates."""
    run1_spec, run2_spec = dataset
    run1 = build_run("run1", run1_spec)
    run2 = build_run("run2", run2_spec)
    tree = build_pair_tree(run1, run2)
    matcher = MatchCountVisitor()
    matcher.walk(tree)
    visitor = XorVisitor(version_module.XorPredicates())
    visitor.walk(tree)
    return visitor.report()


run_old_version = partial(run_xor_diff, version_old)
run_new_version = partial(run_xor_diff, version_new)


def regression_manifests() -> bool:
    return (run_old_version(REGRESSING_DATASET)
            != run_new_version(REGRESSING_DATASET))


def is_cause_entry(entry) -> bool:
    """Ground truth: differences inside (or calling) should_add_inv2 —
    the typo'd predicate.  The paper's own tool exhibited a false
    negative on the shouldAddInv1 half of the edit; ``cause_marks=2``
    in the bench reproduces that accounting."""
    method = getattr(entry.event, "method", "") or ""
    return ("should_add_inv2" in entry.method
            or "should_add_inv2" in method)


#: Both predicate methods changed between versions.
CAUSE_MARKS = 2
