"""The Daikon analogue: likely-invariant detection and invariant diffing.

Daikon [Ernst et al., TSE 2001] observes variable values at program points
and reports the invariants that held over all observations.  Its ``diff``
subsystem compares the invariants of two runs with visitors;
``XorVisitor`` reports invariants present in exactly one of the runs, and
the regression the paper revisits (first evaluated by JUnit/CIA) was
caused by changes to ``XorVisitor.shouldAddInv1`` and ``shouldAddInv2``.

This package implements the full pipeline: sample model, invariant
templates, falsification-based inference, the visitor-based diff, and the
two versions of the XorVisitor predicates (the new one regressing exactly
as described).
"""

from repro.workloads.invariants.inference import InvariantDetector
from repro.workloads.invariants.invariants import (ConstantInvariant,
                                                   EqualityInvariant,
                                                   Invariant, NonZeroInvariant,
                                                   RangeInvariant)
from repro.workloads.invariants.model import ProgramPoint, RunData, Sample
from repro.workloads.invariants.scenario import (CORRECT_DATASET,
                                                 REGRESSING_DATASET,
                                                 is_cause_entry,
                                                 run_new_version,
                                                 run_old_version)

__all__ = [
    "CORRECT_DATASET", "ConstantInvariant", "EqualityInvariant",
    "Invariant", "InvariantDetector", "NonZeroInvariant", "ProgramPoint",
    "REGRESSING_DATASET", "RangeInvariant", "RunData", "Sample",
    "is_cause_entry", "run_new_version", "run_old_version",
]
