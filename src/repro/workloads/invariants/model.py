"""Data model: program points, samples, and run data."""

from __future__ import annotations

from repro.capture import traced


@traced
class ProgramPoint:
    """A named program point with an ordered variable list."""

    def __init__(self, name: str, variables: tuple[str, ...]):
        self.name = name
        self.variables = variables

    def __repr__(self):
        return f"ProgramPoint({self.name})"


@traced
class Sample:
    """One observation of all variables at a program point."""

    def __init__(self, values: tuple):
        self.values = values

    def value_of(self, index: int):
        return self.values[index]

    def __repr__(self):
        return f"Sample{self.values}"


@traced
class RunData:
    """All samples of one program run, grouped by program point."""

    def __init__(self, name: str):
        self.name = name
        self.points = {}
        self.samples = {}

    def declare(self, point: ProgramPoint) -> None:
        self.points[point.name] = point
        self.samples[point.name] = []

    def observe(self, point_name: str, *values) -> None:
        if point_name not in self.points:
            raise KeyError(f"undeclared program point: {point_name}")
        expected = len(self.points[point_name].variables)
        if len(values) != expected:
            raise ValueError(
                f"{point_name} expects {expected} values, got {len(values)}")
        self.samples[point_name].append(Sample(tuple(values)))

    def point_names(self):
        return list(self.points)

    def samples_at(self, point_name: str):
        return list(self.samples[point_name])

    def sample_count(self, point_name: str) -> int:
        return len(self.samples[point_name])

    def __repr__(self):
        return f"RunData({self.name})"


def build_run(name: str, spec: dict[str, tuple[tuple[str, ...], list[tuple]]]
              ) -> RunData:
    """Build a run from ``{point: (variables, [sample values, ...])}``."""
    run = RunData(name)
    for point_name, (variables, rows) in spec.items():
        run.declare(ProgramPoint(point_name, tuple(variables)))
        for row in rows:
            run.observe(point_name, *row)
    return run
