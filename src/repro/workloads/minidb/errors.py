"""Error types of the SQL engine."""

from __future__ import annotations


class SqlError(Exception):
    """Lexical or syntactic error in a statement."""


class CompileError(Exception):
    """Query compilation (planning/optimisation) failure — the DERBY-1633
    regression surfaces as one of these."""


class StorageError(Exception):
    """Catalog or storage-level failure (unknown table/column, arity)."""
