"""The DERBY-1633 regression scenario.

The sample database has an ``orders`` table and a ``customers`` table
that *share a column name* (``region``).  The regressing query filters
orders by an ``IN`` subquery over customers *with a predicate*:

    SELECT id, region FROM orders
    WHERE region IN (SELECT region FROM customers WHERE tier = 1)

* 10.1.2.1 evaluates the subquery nested — correct rows come back.
* 10.1.3.1 tries to flatten it; the predicated path's column-binding
  check sees ``region`` in the *outer* schema too, declares the binding
  ambiguous, and aborts compilation with a ``CompileError``.

The correct test case alters the predicate ("We formed the alternate
test case by modifying the predicate causing the regression in the SQL
query"): selecting the ``name`` column in the subquery avoids the
shadowed name, flattening succeeds, and both versions agree."""

from __future__ import annotations

from functools import partial

from repro.workloads.minidb.engine import run_session

REGIONS = ("east", "west", "north", "south", "mid")

#: Derby's trace is by far the largest of the four case studies (the
#: paper: 337K entries vs 15-98K); the generated population and query
#: batch scale the session accordingly.
ORDER_ROWS = 150
CUSTOMER_ROWS = 40


def _build_setup() -> list[str]:
    statements = [
        "CREATE TABLE orders (id, region, amount)",
        "CREATE TABLE customers (name, region, tier)",
    ]
    for order_id in range(1, ORDER_ROWS + 1):
        region = REGIONS[order_id % len(REGIONS)]
        amount = 20 + (order_id * 37) % 400
        statements.append(
            f"INSERT INTO orders VALUES ({order_id}, '{region}', {amount})")
    for customer_id in range(1, CUSTOMER_ROWS + 1):
        region = REGIONS[(customer_id * 3) % len(REGIONS)]
        tier = 1 + customer_id % 3
        statements.append(
            f"INSERT INTO customers VALUES "
            f"('cust{customer_id}', '{region}', {tier})")
    return statements


#: Shared database population (identical in both versions).
SETUP_STATEMENTS = _build_setup()

#: The query batch; query 4 is the regression trigger (predicated IN
#: subquery with the shadowed ``region`` column name).
REGRESSING_QUERIES = [
    "SELECT id, amount FROM orders WHERE amount > 150",
    "SELECT id FROM orders WHERE amount > 100 AND amount < 300",
    "SELECT name FROM customers WHERE tier <= 2",
    "SELECT id, region FROM orders "
    "WHERE region IN (SELECT region FROM customers WHERE tier = 1)",
    "SELECT id FROM orders WHERE region = 'east' AND amount > 40",
    "SELECT name, region FROM customers "
    "WHERE region IN (SELECT region FROM customers)",
]

#: The alternate test case: modified predicate, no shadowed name.
CORRECT_QUERIES = [
    "SELECT id, amount FROM orders WHERE amount > 150",
    "SELECT id FROM orders WHERE amount > 100 AND amount < 300",
    "SELECT name FROM customers WHERE tier <= 2",
    "SELECT id, region FROM orders "
    "WHERE region IN (SELECT region FROM customers)",
    "SELECT id FROM orders WHERE region = 'east' AND amount > 40",
    "SELECT name, region FROM customers "
    "WHERE region IN (SELECT region FROM customers)",
]

REGRESSING_INPUT = (SETUP_STATEMENTS, REGRESSING_QUERIES)
CORRECT_INPUT = (SETUP_STATEMENTS, CORRECT_QUERIES)


def run_version(version: str, inputs) -> list[str]:
    """Run a session, returning printable per-query outcomes."""
    setup, queries = inputs
    outcomes = run_session(version, setup, queries)
    rendered = []
    for outcome in outcomes:
        if isinstance(outcome, Exception):
            rendered.append(f"ERROR: {outcome}")
        else:
            rendered.append(f"ROWS: {sorted(outcome)}")
    return rendered


run_old_version = partial(run_version, "10.1.2.1")
run_new_version = partial(run_version, "10.1.3.1")


def regression_manifests() -> bool:
    return (run_old_version(REGRESSING_INPUT)
            != run_new_version(REGRESSING_INPUT))


def is_cause_entry(entry) -> bool:
    """Ground truth: the flattening path — eligibility, the ambiguous
    binding check, and the CompileError it raises."""
    method = getattr(entry.event, "method", "") or ""
    for fragment in ("flatten", "flattening_eligible", "has_column"):
        if fragment in entry.method or fragment in method:
            return True
    event = entry.event
    texts = []
    for rep in [getattr(event, "value", None),
                *list(getattr(event, "args", ()) or ())]:
        if rep is not None:
            texts.append(str(rep.serialization))
    return any("ambiguous column binding" in text for text in texts)
