"""Database facade and the threaded session driver."""

from __future__ import annotations

import threading

from repro.capture import traced
from repro.workloads.minidb.errors import CompileError, SqlError
from repro.workloads.minidb.locks import LockDaemon, LockManager
from repro.workloads.minidb.planner import make_planner
from repro.workloads.minidb.sql import CreateTable, parse_sql
from repro.workloads.minidb.storage import Catalog


@traced
class ExecutionContext:
    """What plan nodes need at run time."""

    def __init__(self, catalog: Catalog, locks: LockManager):
        self.catalog = catalog
        self.locks = locks

    def __repr__(self):
        return "ExecutionContext"


@traced
class Database:
    """One database instance of a specific engine version."""

    def __init__(self, version: str):
        self.version = version
        self.catalog = Catalog()
        self.locks = LockManager()
        self.planner = make_planner(version, self.catalog)
        self.statements_run = 0

    def execute(self, sql_text: str) -> list[tuple]:
        """Parse, compile, and run one statement."""
        statement = parse_sql(sql_text)
        self.statements_run = self.statements_run + 1
        if isinstance(statement, CreateTable):
            self.catalog.create_table(statement.table, statement.columns)
            return []
        plan = self.planner.plan(statement)
        context = ExecutionContext(self.catalog, self.locks)
        return plan.execute(context)

    def __repr__(self):
        return f"Database({self.version})"


@traced
class QueryWorker:
    """Runs one statement on its own thread (Derby's per-connection
    threads)."""

    def __init__(self, database: Database, sql_text: str):
        self.database = database
        self.sql_text = sql_text
        self.rows = None
        self.error = None

    def run(self) -> None:
        try:
            self.rows = self.database.execute(self.sql_text)
        except (CompileError, SqlError) as exc:
            self.error = exc

    def __repr__(self):
        return f"QueryWorker({self.sql_text[:30]!r})"


def run_session(version: str, setup: list[str],
                queries: list[str]) -> list:
    """A full client session.

    Setup statements run on the main thread; each query runs on a
    dedicated worker thread (joined before the next starts, keeping
    traces deterministic), with the lock daemon auditing once per query.
    Returns per-query results: row lists, or the compile error that
    aborted the query.
    """
    database = Database(version)
    daemon = LockDaemon(database.locks)
    daemon.start()
    results: list = []
    try:
        for statement in setup:
            database.execute(statement)
        for sql_text in queries:
            worker = QueryWorker(database, sql_text)
            thread = threading.Thread(target=worker.run,
                                      name="query-worker")
            thread.start()
            thread.join()
            daemon.tick()
            if worker.error is not None:
                results.append(worker.error)
            else:
                results.append(worker.rows)
    finally:
        daemon.stop()
    return results
