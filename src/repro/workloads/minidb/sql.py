"""SQL front end: lexer and recursive-descent parser.

Supported statements::

    CREATE TABLE t (a, b, c)
    INSERT INTO t VALUES (1, 'x', 2)
    SELECT a, b FROM t WHERE <predicate> [ORDER BY col [DESC]] [LIMIT n]
    SELECT COUNT(*) FROM t [WHERE <predicate>]
    SELECT * FROM t

Predicates: comparisons (= != < <= > >=) between columns and literals,
AND / OR conjunctions, and ``col IN (SELECT col FROM t WHERE ...)``
subqueries — the construct at the heart of DERBY-1633.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.minidb.errors import SqlError

KEYWORDS = {"create", "table", "insert", "into", "values", "select",
            "from", "where", "and", "or", "in", "not", "order", "by",
            "limit", "count", "asc", "desc"}

COMPARISONS = ("=", "!=", "<=", ">=", "<", ">")


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # 'name' | 'kw' | 'int' | 'str' | 'punct' | 'op' | 'eof'
    text: str
    position: int


def tokenize_sql(text: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "kw" if word.lower() in KEYWORDS else "name"
            tokens.append(Token(kind, word.lower() if kind == "kw"
                                else word, i))
            i = j
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token("int", text[i:j], i))
            i = j
            continue
        if ch == "'":
            j = text.find("'", i + 1)
            if j < 0:
                raise SqlError(f"unterminated string at {i}")
            tokens.append(Token("str", text[i + 1:j], i))
            i = j + 1
            continue
        matched = False
        for op in COMPARISONS:
            if text.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in "(),*":
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise SqlError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("eof", "", n))
    return tokens


# -- AST ---------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Literal:
    value: object


@dataclass(frozen=True, slots=True)
class ColumnRef:
    name: str


@dataclass(frozen=True, slots=True)
class Comparison:
    op: str
    left: "Literal | ColumnRef"
    right: "Literal | ColumnRef"


@dataclass(frozen=True, slots=True)
class BoolOp:
    op: str  # 'and' | 'or'
    left: object
    right: object


@dataclass(frozen=True, slots=True)
class InSubquery:
    column: ColumnRef
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True, slots=True)
class Select:
    columns: tuple[str, ...]  # ('*',) for all
    table: str
    where: object | None
    #: ORDER BY column (None = storage order) and direction.
    order_by: str | None = None
    descending: bool = False
    #: LIMIT row cap (None = unlimited).
    limit: int | None = None
    #: SELECT COUNT(*) — aggregate row count instead of projection.
    count: bool = False


@dataclass(frozen=True, slots=True)
class CreateTable:
    table: str
    columns: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class Insert:
    table: str
    values: tuple[object, ...]


Statement = Select | CreateTable | Insert


class _SqlParser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.at = 0

    def peek(self) -> Token:
        return self.tokens[self.at]

    def advance(self) -> Token:
        token = self.tokens[self.at]
        if token.kind != "eof":
            self.at += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            found = self.peek()
            want = text if text is not None else kind
            raise SqlError(f"expected {want!r}, found {found.text!r} "
                           f"at {found.position}")
        return token

    # -- statements --------------------------------------------------------

    def statement(self) -> Statement:
        if self.accept("kw", "create"):
            return self.create_table()
        if self.accept("kw", "insert"):
            return self.insert()
        if self.accept("kw", "select"):
            select = self.select_body()
            self.expect("eof")
            return select
        token = self.peek()
        raise SqlError(f"unknown statement at {token.position}")

    def create_table(self) -> CreateTable:
        self.expect("kw", "table")
        table = self.expect("name").text
        self.expect("punct", "(")
        columns = [self.expect("name").text]
        while self.accept("punct", ","):
            columns.append(self.expect("name").text)
        self.expect("punct", ")")
        self.expect("eof")
        return CreateTable(table=table, columns=tuple(columns))

    def insert(self) -> Insert:
        self.expect("kw", "into")
        table = self.expect("name").text
        self.expect("kw", "values")
        self.expect("punct", "(")
        values = [self.literal_value()]
        while self.accept("punct", ","):
            values.append(self.literal_value())
        self.expect("punct", ")")
        self.expect("eof")
        return Insert(table=table, values=tuple(values))

    def literal_value(self):
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return int(token.text)
        if token.kind == "str":
            self.advance()
            return token.text
        raise SqlError(f"expected literal at {token.position}")

    # -- select -------------------------------------------------------------

    def select_body(self) -> Select:
        count = False
        if self.accept("kw", "count"):
            self.expect("punct", "(")
            self.expect("punct", "*")
            self.expect("punct", ")")
            columns: tuple[str, ...] = ("*",)
            count = True
        else:
            columns = self.select_columns()
        self.expect("kw", "from")
        table = self.expect("name").text
        where = None
        if self.accept("kw", "where"):
            where = self.predicate()
        order_by = None
        descending = False
        if self.accept("kw", "order"):
            self.expect("kw", "by")
            order_by = self.expect("name").text
            if self.accept("kw", "desc"):
                descending = True
            else:
                self.accept("kw", "asc")
        limit = None
        if self.accept("kw", "limit"):
            token = self.expect("int")
            limit = int(token.text)
            if limit < 0:
                raise SqlError(f"negative LIMIT at {token.position}")
        return Select(columns=columns, table=table, where=where,
                      order_by=order_by, descending=descending,
                      limit=limit, count=count)

    def select_columns(self) -> tuple[str, ...]:
        if self.accept("punct", "*"):
            return ("*",)
        columns = [self.expect("name").text]
        while self.accept("punct", ","):
            columns.append(self.expect("name").text)
        return tuple(columns)

    def predicate(self):
        left = self.conjunct()
        while self.accept("kw", "or"):
            right = self.conjunct()
            left = BoolOp(op="or", left=left, right=right)
        return left

    def conjunct(self):
        left = self.atom()
        while self.accept("kw", "and"):
            right = self.atom()
            left = BoolOp(op="and", left=left, right=right)
        return left

    def atom(self):
        if self.accept("punct", "("):
            inner = self.predicate()
            self.expect("punct", ")")
            return inner
        column = ColumnRef(self.expect("name").text)
        negated = bool(self.accept("kw", "not"))
        if self.accept("kw", "in"):
            self.expect("punct", "(")
            self.expect("kw", "select")
            subquery = self.select_body()
            self.expect("punct", ")")
            return InSubquery(column=column, subquery=subquery,
                              negated=negated)
        if negated:
            token = self.peek()
            raise SqlError(f"expected IN after NOT at {token.position}")
        op = self.expect("op").text
        right = self.operand()
        return Comparison(op=op, left=column, right=right)

    def operand(self):
        token = self.peek()
        if token.kind == "name":
            self.advance()
            return ColumnRef(token.text)
        return Literal(self.literal_value())


def parse_sql(text: str) -> Statement:
    """Parse one SQL statement."""
    return _SqlParser(tokenize_sql(text)).statement()
