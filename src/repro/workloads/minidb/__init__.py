"""The Derby analogue: a small multithreaded SQL engine.

Pipeline mirrors Derby's: SQL text is lexed and parsed, *compiled* into a
physical plan by the planner/optimiser, and executed against in-memory
storage under a lock manager.  Queries run on dedicated worker threads
and a background lock-daemon thread produces additional thread views —
the property that makes the paper's Derby case exercise multi-thread
view correlation.

The DERBY-1633 analogue: version ``10.1.3.1`` introduces a subquery-
flattening optimisation whose corner case (a predicated ``IN`` subquery
whose inner column shadows an outer column) raises a ``CompileError``
during *query compilation* — the regressing run aborts before execution,
producing the large error-path divergence the paper reports (125K raw
differences)."""

from repro.workloads.minidb.engine import Database, run_session
from repro.workloads.minidb.errors import (CompileError, SqlError,
                                           StorageError)

__all__ = ["CompileError", "Database", "SqlError", "StorageError",
           "run_session"]
