"""Query planner / optimiser — the module DERBY-1633 regressed in.

``Planner`` (10.1.2.1) compiles ``IN`` subqueries as nested evaluation
(:class:`InSubqueryFilterNode`): always correct, never clever.

``OptimizingPlanner`` (10.1.3.1) adds *subquery flattening*: an ``IN``
subquery becomes a semi-join when eligible.  The eligibility analysis has
an incomplete corner case: when the subquery carries its own WHERE
predicate *and* its inner column name shadows a column of the outer
table, the flattening's column-binding step consults the outer schema
first and — finding the name there — concludes the binding is ambiguous
and raises :class:`CompileError` instead of falling back to the nested
strategy.  The regressing query therefore fails during *compilation*,
exactly like the Derby bug ("version 10.1.3.1 throwing an error during
query compilation")."""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.minidb.errors import CompileError
from repro.workloads.minidb.plans import (CountNode, InSubqueryFilterNode,
                                          InsertNode, LimitNode, PlanNode,
                                          PredicateFilterNode, ProjectNode,
                                          ScanNode, SemiJoinNode, SortNode)
from repro.workloads.minidb.sql import (BoolOp, CreateTable, InSubquery,
                                        Insert, Select)
from repro.workloads.minidb.storage import Catalog


def split_predicates(where) -> list:
    """Flatten top-level AND conjunctions into a predicate list."""
    if where is None:
        return []
    if isinstance(where, BoolOp) and where.op == "and":
        return split_predicates(where.left) + split_predicates(where.right)
    return [where]


@traced
class Planner:
    """The 10.1.2.1 planner: nested subquery evaluation only."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- statement entry point ------------------------------------------------

    def plan(self, statement) -> PlanNode:
        if isinstance(statement, Insert):
            return InsertNode(statement.table, statement.values)
        if isinstance(statement, Select):
            return self.plan_select(statement)
        raise CompileError(f"unplannable statement: {statement!r}")

    # -- SELECT -----------------------------------------------------------------

    def plan_select(self, select: Select) -> PlanNode:
        schema = self.catalog.table(select.table).schema
        node: PlanNode = ScanNode(select.table)
        plain = []
        subqueries = []
        for predicate in split_predicates(select.where):
            if isinstance(predicate, InSubquery):
                subqueries.append(predicate)
            else:
                plain.append(predicate)
        for predicate in plain:
            node = PredicateFilterNode(node, predicate, schema)
        for predicate in subqueries:
            node = self.plan_subquery(node, predicate, schema)
        if select.order_by is not None:
            node = SortNode(node, schema.column_index(select.order_by),
                            select.descending)
        if select.count:
            node = CountNode(node)
        else:
            node = self.project(node, select, schema)
        if select.limit is not None:
            node = LimitNode(node, select.limit)
        return node

    def plan_subquery(self, node: PlanNode, predicate: InSubquery,
                      schema) -> PlanNode:
        column_index = schema.column_index(predicate.column.name)
        subplan = self.plan_select(predicate.subquery)
        return InSubqueryFilterNode(node, column_index, subplan,
                                    predicate.negated)

    def project(self, node: PlanNode, select: Select, schema) -> PlanNode:
        if select.columns == ("*",):
            return ProjectNode(node, ())
        indices = tuple(schema.column_index(c) for c in select.columns)
        return ProjectNode(node, indices)

    def __repr__(self):
        return type(self).__name__


@traced
class OptimizingPlanner(Planner):
    """The 10.1.3.1 planner: adds subquery flattening (with the bug)."""

    def plan_subquery(self, node: PlanNode, predicate: InSubquery,
                      schema) -> PlanNode:
        if self.flattening_eligible(predicate):
            return self.flatten(node, predicate, schema)
        return super().plan_subquery(node, predicate, schema)

    def flattening_eligible(self, predicate: InSubquery) -> bool:
        """Single-column, non-negated subqueries are flattened."""
        subquery = predicate.subquery
        return (not predicate.negated
                and len(subquery.columns) == 1
                and subquery.columns != ("*",))

    def flatten(self, node: PlanNode, predicate: InSubquery,
                schema) -> PlanNode:
        subquery = predicate.subquery
        inner_schema = self.catalog.table(subquery.table).schema
        inner_column = subquery.columns[0]
        outer_index = schema.column_index(predicate.column.name)
        if subquery.where is not None:
            # BUG (DERBY-1633 analogue): the binding check for the
            # predicated path consults the *outer* schema first; a
            # shadowed column name trips the ambiguity error instead of
            # falling back to nested evaluation.
            if schema.has_column(inner_column):
                raise CompileError(
                    f"ambiguous column binding {inner_column!r} while "
                    f"flattening subquery over {subquery.table}")
            inner: PlanNode = PredicateFilterNode(
                ScanNode(subquery.table), subquery.where, inner_schema)
        else:
            inner = ScanNode(subquery.table)
        inner_index = inner_schema.column_index(inner_column)
        return SemiJoinNode(node, outer_index, inner, inner_index,
                            predicate.negated)

    def plan(self, statement) -> PlanNode:
        return super().plan(statement)


def make_planner(version: str, catalog: Catalog) -> Planner:
    """Planner factory by engine version."""
    if version == "10.1.2.1":
        return Planner(catalog)
    if version == "10.1.3.1":
        return OptimizingPlanner(catalog)
    raise ValueError(f"unknown database version: {version!r}")
