"""Catalog and storage: schemas, heap tables, rows."""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.minidb.errors import StorageError


@traced
class TableSchema:
    """Column layout of one table."""

    def __init__(self, name: str, columns: tuple[str, ...]):
        self.name = name
        self.columns = columns

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise StorageError(
                f"unknown column {column!r} in table {self.name}") from None

    def has_column(self, column: str) -> bool:
        return column in self.columns

    def __repr__(self):
        return f"TableSchema({self.name}{self.columns})"


@traced
class HeapTable:
    """Row storage for one table."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: list[tuple] = []

    def insert(self, values: tuple) -> None:
        if len(values) != len(self.schema.columns):
            raise StorageError(
                f"{self.schema.name} expects {len(self.schema.columns)} "
                f"values, got {len(values)}")
        self._rows.append(values)

    def scan(self) -> list[tuple]:
        return list(self._rows)

    def row_count(self) -> int:
        return len(self._rows)

    def __repr__(self):
        return f"HeapTable({self.schema.name}, {len(self._rows)} rows)"


@traced
class Catalog:
    """Name -> table registry."""

    def __init__(self):
        self._tables: dict[str, HeapTable] = {}

    def create_table(self, name: str, columns: tuple[str, ...]) -> HeapTable:
        if name in self._tables:
            raise StorageError(f"table exists: {name}")
        table = HeapTable(TableSchema(name, columns))
        self._tables[name] = table
        return table

    def table(self, name: str) -> HeapTable:
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"unknown table: {name}") from None

    def table_names(self) -> list[str]:
        return list(self._tables)

    def __repr__(self):
        return f"Catalog({len(self._tables)} tables)"
