"""Physical plan nodes.

Plans are trees of nodes with an ``execute(context) -> list[rows]``
protocol.  The planner builds them; the executor runs them under table
locks.  ``InSubqueryFilterNode`` is the old (10.1.2.1) strategy for ``IN``
subqueries; ``SemiJoinNode`` is the flattened strategy the new optimiser
prefers.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.minidb.errors import StorageError
from repro.workloads.minidb.sql import (BoolOp, ColumnRef, Comparison,
                                        Literal)


def compare(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise StorageError(f"unknown comparison: {op}")


@traced
class PlanNode:
    """Base node."""

    def execute(self, context) -> list[tuple]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self):
        return self.describe()


@traced
class ScanNode(PlanNode):
    """Full table scan (under a shared lock)."""

    def __init__(self, table_name: str):
        self.table_name = table_name

    def execute(self, context) -> list[tuple]:
        lock = context.locks.read_lock(self.table_name)
        try:
            return context.catalog.table(self.table_name).scan()
        finally:
            lock.release_shared()

    def describe(self) -> str:
        return f"Scan({self.table_name})"


@traced
class PredicateFilterNode(PlanNode):
    """Row filter over comparison/boolean predicates (no subqueries)."""

    def __init__(self, child: PlanNode, predicate, schema):
        self.child = child
        self.predicate = predicate
        self.schema = schema

    def execute(self, context) -> list[tuple]:
        rows = self.child.execute(context)
        return [row for row in rows if self.matches(row)]

    def matches(self, row: tuple) -> bool:
        return self.evaluate(self.predicate, row)

    def evaluate(self, predicate, row: tuple) -> bool:
        if isinstance(predicate, BoolOp):
            left = self.evaluate(predicate.left, row)
            if predicate.op == "and":
                return left and self.evaluate(predicate.right, row)
            return left or self.evaluate(predicate.right, row)
        if isinstance(predicate, Comparison):
            return compare(predicate.op,
                           self.resolve(predicate.left, row),
                           self.resolve(predicate.right, row))
        raise StorageError(f"unsupported predicate: {predicate!r}")

    def resolve(self, operand, row: tuple):
        if isinstance(operand, Literal):
            return operand.value
        if isinstance(operand, ColumnRef):
            return row[self.schema.column_index(operand.name)]
        raise StorageError(f"unsupported operand: {operand!r}")

    def describe(self) -> str:
        return f"Filter({self.child.describe()})"


@traced
class InSubqueryFilterNode(PlanNode):
    """Old strategy: evaluate the subquery once, then filter the outer
    rows by membership (nested evaluation, no flattening)."""

    def __init__(self, child: PlanNode, column_index: int,
                 subplan: PlanNode, negated: bool):
        self.child = child
        self.column_index = column_index
        self.subplan = subplan
        self.negated = negated

    def execute(self, context) -> list[tuple]:
        members = {row[0] for row in self.subplan.execute(context)}
        rows = self.child.execute(context)
        kept = []
        for row in rows:
            inside = row[self.column_index] in members
            if inside != self.negated:
                kept.append(row)
        return kept

    def describe(self) -> str:
        return f"InSubquery({self.child.describe()})"


@traced
class SemiJoinNode(PlanNode):
    """New strategy (10.1.3.1): the flattened semi-join over the subquery
    table."""

    def __init__(self, child: PlanNode, column_index: int,
                 inner: PlanNode, inner_column_index: int, negated: bool):
        self.child = child
        self.column_index = column_index
        self.inner = inner
        self.inner_column_index = inner_column_index
        self.negated = negated

    def execute(self, context) -> list[tuple]:
        inner_rows = self.inner.execute(context)
        members = {row[self.inner_column_index] for row in inner_rows}
        kept = []
        for row in self.child.execute(context):
            inside = row[self.column_index] in members
            if inside != self.negated:
                kept.append(row)
        return kept

    def describe(self) -> str:
        return f"SemiJoin({self.child.describe()})"


@traced
class ProjectNode(PlanNode):
    """Column projection."""

    def __init__(self, child: PlanNode, indices: tuple[int, ...]):
        self.child = child
        self.indices = indices

    def execute(self, context) -> list[tuple]:
        rows = self.child.execute(context)
        if not self.indices:  # SELECT *
            return rows
        return [tuple(row[i] for i in self.indices) for row in rows]

    def describe(self) -> str:
        return f"Project({self.child.describe()})"


@traced
class SortNode(PlanNode):
    """ORDER BY: sorts rows on one column."""

    def __init__(self, child: PlanNode, column_index: int,
                 descending: bool):
        self.child = child
        self.column_index = column_index
        self.descending = descending

    def execute(self, context) -> list[tuple]:
        rows = self.child.execute(context)
        at = self.column_index
        return sorted(rows, key=lambda row: row[at],
                      reverse=self.descending)

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"Sort({self.child.describe()}, {direction})"


@traced
class LimitNode(PlanNode):
    """LIMIT: caps the row count."""

    def __init__(self, child: PlanNode, limit: int):
        self.child = child
        self.limit = limit

    def execute(self, context) -> list[tuple]:
        return self.child.execute(context)[:self.limit]

    def describe(self) -> str:
        return f"Limit({self.child.describe()}, {self.limit})"


@traced
class CountNode(PlanNode):
    """COUNT(*): one row holding the child's row count."""

    def __init__(self, child: PlanNode):
        self.child = child

    def execute(self, context) -> list[tuple]:
        return [(len(self.child.execute(context)),)]

    def describe(self) -> str:
        return f"Count({self.child.describe()})"


@traced
class InsertNode(PlanNode):
    """Row insertion (under an exclusive lock)."""

    def __init__(self, table_name: str, values: tuple):
        self.table_name = table_name
        self.values = values

    def execute(self, context) -> list[tuple]:
        lock = context.locks.write_lock(self.table_name)
        try:
            context.catalog.table(self.table_name).insert(self.values)
            return []
        finally:
            lock.release_exclusive()

    def describe(self) -> str:
        return f"Insert({self.table_name})"
