"""Lock manager and the background lock daemon.

The lock manager hands out shared (read) and exclusive (write) table
locks; the daemon is a background thread — Derby runs several — that
audits lock activity on demand.  Its thread view exercises the paper's
multi-thread correlation: daemon events are unrelated to the regression
and must be filtered out by the analysis (the Derby case study notes
"proper analysis and elimination of behavior on other threads not related
to the regression"; its four false positives were lock-use differences).
"""

from __future__ import annotations

import queue
import threading

from repro.capture import traced


@traced
class TableLock:
    """One table's lock state (simplified shared/exclusive counting)."""

    def __init__(self, table_name: str):
        self.table_name = table_name
        self.shared_count = 0
        self.exclusive = False
        self.grants = 0
        self._mutex = threading.Lock()

    def acquire_shared(self) -> None:
        with self._mutex:
            self.shared_count = self.shared_count + 1
            self.grants = self.grants + 1

    def release_shared(self) -> None:
        with self._mutex:
            self.shared_count = self.shared_count - 1

    def acquire_exclusive(self) -> None:
        with self._mutex:
            self.exclusive = True
            self.grants = self.grants + 1

    def release_exclusive(self) -> None:
        with self._mutex:
            self.exclusive = False

    def __repr__(self):
        return f"TableLock({self.table_name})"


@traced
class LockManager:
    """Table-level lock registry."""

    def __init__(self):
        self._locks: dict[str, TableLock] = {}
        self._mutex = threading.Lock()

    def lock_for(self, table_name: str) -> TableLock:
        with self._mutex:
            lock = self._locks.get(table_name)
            if lock is None:
                lock = TableLock(table_name)
                self._locks[table_name] = lock
            return lock

    def read_lock(self, table_name: str) -> TableLock:
        lock = self.lock_for(table_name)
        lock.acquire_shared()
        return lock

    def write_lock(self, table_name: str) -> TableLock:
        lock = self.lock_for(table_name)
        lock.acquire_exclusive()
        return lock

    def total_grants(self) -> int:
        with self._mutex:
            return sum(lock.grants for lock in self._locks.values())

    def table_names(self) -> list[str]:
        with self._mutex:
            return list(self._locks)

    def __repr__(self):
        return f"LockManager({len(self._locks)} locks)"


@traced
class LockDaemon:
    """Background auditor thread.

    Ticks are posted explicitly (one per statement) instead of
    wall-clock polling so traces stay deterministic across runs; the
    daemon audits the lock table on each tick and exits on the sentinel.
    """

    def __init__(self, manager: LockManager):
        self.manager = manager
        self.audits = 0
        self.last_grant_total = 0
        self._ticks: queue.Queue = queue.Queue()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(target=self.run, name="lock-daemon")
        self._thread.start()

    def run(self) -> None:
        while True:
            tick = self._ticks.get()
            if tick is None:
                return
            self.audit()

    def audit(self) -> None:
        self.audits = self.audits + 1
        self.last_grant_total = self.manager.total_grants()

    def tick(self) -> None:
        self._ticks.put(True)

    def stop(self) -> None:
        self._ticks.put(None)
        if self._thread is not None:
            self._thread.join()

    def __repr__(self):
        return f"LockDaemon(audits={self.audits})"
