"""Harness for the real-life regression studies (Tables 1 and 2).

One :class:`ScenarioSpec` per case study — Daikon, Xalan-1725,
Xalan-1802, Derby-1633 — each pointing at its workload's version entry
points, test inputs, and ground-truth predicate.  ``run_scenario``
produces a :class:`ScenarioResult` carrying every column of the paper's
Table 1 (for both the LCS-based and views-based semantics) and Table 2
(view counts and A/B/C/D set sizes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.api.engines import get_engine
from repro.api.session import CAPTURE_LOCK
from repro.cache import DiffCache, cached_engine_diff
from repro.capture import TraceFilter, trace_call
from repro.exec.capture import CaptureTask, run_capture_tasks
from repro.exec.executors import Executor, resolve_executor
from repro.core.lcs import LcsMemoryError, MemoryBudget, OpCounter
from repro.core.regression import (MODE_INTERSECT, analyze_regression,
                                   evaluate_against_truth)
from repro.core.traces import Trace
from repro.core.view_diff import ViewDiffConfig
from repro.core.web import ViewWeb

from repro.workloads.invariants import scenario as daikon
from repro.workloads.minidb import scenario as derby
from repro.workloads.minixslt import scenario as xalan


@dataclass(slots=True)
class ScenarioSpec:
    """One real-life regression case study."""

    name: str
    package: str
    filter_modules: tuple[str, ...]
    run_old: Callable
    run_new: Callable
    regressing_input: object
    correct_input: object
    is_cause_entry: Callable
    cause_marks: int = 1
    mode: str = MODE_INTERSECT
    #: Bundled :mod:`repro.static.scenarios` pair modelling this case
    #: study in ``repro.lang`` (for static change-impact columns).
    lang_scenario: str | None = None


@dataclass(slots=True)
class SemanticsRow:
    """One semantics' half of a Table 1 row."""

    num_diffs: int | None = None
    diff_sequences: int | None = None
    regression_sequences: int | None = None
    false_positives: int | None = None
    false_negatives: int | None = None
    analysis_seconds: float | None = None
    memory_bytes: int | None = None
    compares: int = 0
    failed: str | None = None  # e.g. "out of memory"


@dataclass(slots=True)
class ScenarioResult:
    """Table 1 row + Table 2 data for one scenario."""

    name: str
    workload_loc: int
    trace_entries: int
    tracing_seconds: float
    lcs: SemanticsRow = field(default_factory=SemanticsRow)
    views: SemanticsRow = field(default_factory=SemanticsRow)
    speedup: float | None = None
    view_counts: dict[str, int] = field(default_factory=dict)
    set_sizes: dict[str, int] = field(default_factory=dict)
    #: Static impact prediction vs dynamic ground truth for the
    #: scenario's ``lang_scenario`` model (``StaticValidation.to_json``
    #: dict: precision/recall + predicted/dynamic method sets), present
    #: when ``run_scenario(..., static_impact=True)``.
    static_impact: dict | None = None


def workload_loc(package: str) -> int:
    """Lines of code of a workload package (the Table 1 LOC column)."""
    import repro
    root = Path(repro.__file__).parent / "workloads" / package
    total = 0
    for path in sorted(root.glob("*.py")):
        total += sum(1 for _ in path.open())
    return total


def capture_scenario_trace(spec: ScenarioSpec, runner: Callable, payload,
                           name: str) -> Trace:
    """Trace one version/input combination under the scenario's
    pointcut filter."""
    trace_filter = TraceFilter(include_modules=spec.filter_modules)
    # One sys.settrace weaver per process: serialise captures so the
    # parallel batch runner can overlap everything else.
    with CAPTURE_LOCK:
        return trace_call(runner, payload, filter=trace_filter,
                          name=name).trace


def capture_scenario_traces(spec: ScenarioSpec,
                            executor: "Executor | str | None" = None
                            ) -> tuple[Trace, Trace, Trace, Trace]:
    """The four scenario traces (old/bad, new/bad, old/ok, new/ok) as
    one batch through the execution layer — truly concurrent under a
    process executor (workload entry points are module-level, so they
    cross the pickle boundary by reference)."""
    trace_filter = TraceFilter(include_modules=spec.filter_modules)
    runs = (
        (spec.run_old, spec.regressing_input, "old/regressing"),
        (spec.run_new, spec.regressing_input, "new/regressing"),
        (spec.run_old, spec.correct_input, "old/correct"),
        (spec.run_new, spec.correct_input, "new/correct"),
    )
    outcomes = run_capture_tasks(
        [CaptureTask(func=runner, args=(payload,),
                     name=f"{spec.name}/{role}", filter=trace_filter)
         for runner, payload, role in runs],
        executor)
    return tuple(outcome.trace for outcome in outcomes)


def _analyze(spec: ScenarioSpec, suspected, expected, regression,
             row: SemanticsRow) -> dict[str, int]:
    report = analyze_regression(suspected, expected=expected,
                                regression=regression, mode=spec.mode)
    evaluation = evaluate_against_truth(report, spec.is_cause_entry,
                                        expected_cause_marks=spec.cause_marks)
    row.num_diffs = suspected.num_diffs()
    row.diff_sequences = len(suspected.sequences)
    row.regression_sequences = report.size_d
    row.false_positives = evaluation.false_positives
    row.false_negatives = evaluation.false_negatives
    return report.set_sizes()


def run_scenario(spec: ScenarioSpec,
                 lcs_budget_cells: int = 100_000_000,
                 config: ViewDiffConfig | None = None,
                 lcs_engine: str = "optimized",
                 views_engine: str = "views",
                 executor: "Executor | str | None" = None,
                 cache: "DiffCache | None" = None,
                 static_impact: bool = False) -> ScenarioResult:
    """Everything the paper measures for one case study.

    Both semantics are resolved through the :mod:`repro.api.engines`
    registry: the views side runs ``views_engine`` (``views`` by
    default; ``anchored:views`` skips ``=e`` compares over patience
    anchor runs while producing the identical result), the
    baseline side runs ``lcs_engine`` (any registered LCS variant).
    ``executor`` routes the four captures through the execution layer
    (``"processes"`` captures them concurrently, worker per trace);
    ``cache`` memoises the three *views* diffs through a
    :class:`~repro.cache.DiffCache`: warm hits credit the compare
    counter with the cold run's totals (so the Table 1 compare and
    speedup columns match cold runs), but the views *timing* column
    then measures cache lookups, not differencing.  The LCS baseline
    is never cached — it always runs under a memory budget, and a
    budget bypasses the cache so the paper's out-of-memory failure and
    peak-cell numbers are re-measured every run.  ``static_impact``
    additionally cross-validates the static change-impact prediction of
    the scenario's ``lang_scenario`` model against its interpreted
    ground truth (``result.static_impact``).
    """
    started = time.perf_counter()
    old_bad, new_bad, old_ok, new_ok = capture_scenario_traces(
        spec, executor)
    tracing_seconds = time.perf_counter() - started

    result = ScenarioResult(
        name=spec.name,
        workload_loc=workload_loc(spec.package),
        trace_entries=len(old_bad) + len(new_bad),
        tracing_seconds=tracing_seconds,
    )

    # -- views-based differencing + analysis --------------------------------
    views_backend = get_engine(views_engine)
    views_counter = OpCounter()
    views_started = time.perf_counter()
    suspected_v = cached_engine_diff(cache, views_backend, old_bad, new_bad,
                                     config=config, counter=views_counter)
    expected_v = cached_engine_diff(cache, views_backend, old_ok, new_ok,
                                    config=config, counter=views_counter)
    regression_v = cached_engine_diff(cache, views_backend, new_ok, new_bad,
                                      config=config, counter=views_counter)
    result.set_sizes = _analyze(spec, suspected_v, expected_v,
                                regression_v, result.views)
    result.views.analysis_seconds = time.perf_counter() - views_started
    result.views.compares = views_counter.total
    # Views memory: the webs' index lists (4 bytes/index modelled).
    web = ViewWeb(old_bad)
    result.view_counts = web.counts()
    result.views.memory_bytes = 8 * sum(
        len(v.indices) for v in web.all_views())

    # -- LCS-based differencing + analysis ------------------------------------
    baseline = get_engine(lcs_engine)
    lcs_counter = OpCounter()
    budget = MemoryBudget(max_cells=lcs_budget_cells)
    lcs_started = time.perf_counter()
    try:
        # Direct engine calls, not cached_engine_diff: these always
        # carry a budget, which bypasses the cache by design (see the
        # docstring), so routing them through it would only obscure
        # that they run cold every time.
        suspected_l = baseline.diff(old_bad, new_bad, counter=lcs_counter,
                                    budget=budget)
        expected_l = baseline.diff(old_ok, new_ok, counter=lcs_counter,
                                   budget=budget)
        regression_l = baseline.diff(new_ok, new_bad, counter=lcs_counter,
                                     budget=budget)
        _analyze(spec, suspected_l, expected_l, regression_l, result.lcs)
        result.lcs.analysis_seconds = time.perf_counter() - lcs_started
        result.lcs.compares = lcs_counter.total
        result.lcs.memory_bytes = budget.peak_bytes()
        # Speedup on the paper's metric: entry compare operations (the
        # baseline's count includes the DP-equivalent charge when the
        # anchored differ stood in for the quadratic core).
        if result.views.compares:
            result.speedup = result.lcs.compares / result.views.compares
    except LcsMemoryError as failure:
        result.lcs.failed = (f"out of memory failure at "
                             f"{failure.needed_cells * 4} bytes")
        result.lcs.memory_bytes = failure.needed_cells * 4

    # -- static change-impact prediction (repro.static) ----------------------
    if static_impact and spec.lang_scenario is not None:
        from repro.static.validate import validate_scenario
        result.static_impact = \
            validate_scenario(spec.lang_scenario).to_json()
    return result


SCENARIOS: dict[str, ScenarioSpec] = {
    "Daikon": ScenarioSpec(
        name="Daikon",
        lang_scenario="invariants",
        package="invariants",
        filter_modules=("repro.workloads.invariants",),
        run_old=daikon.run_old_version,
        run_new=daikon.run_new_version,
        regressing_input=daikon.REGRESSING_DATASET,
        correct_input=daikon.CORRECT_DATASET,
        is_cause_entry=daikon.is_cause_entry,
        cause_marks=daikon.CAUSE_MARKS,
    ),
    "Xalan-1725": ScenarioSpec(
        name="Xalan-1725",
        lang_scenario="minixslt",
        package="minixslt",
        filter_modules=("repro.workloads.minixslt",),
        run_old=xalan.run_1725_old,
        run_new=xalan.run_1725_new,
        regressing_input=xalan.REGRESSING_INPUT_1725,
        correct_input=xalan.CORRECT_INPUT_1725,
        is_cause_entry=xalan.is_cause_entry_1725,
    ),
    "Xalan-1802": ScenarioSpec(
        name="Xalan-1802",
        lang_scenario="minixslt",
        package="minixslt",
        filter_modules=("repro.workloads.minixslt",),
        run_old=xalan.run_1802_old,
        run_new=xalan.run_1802_new,
        regressing_input=xalan.REGRESSING_INPUT_1802,
        correct_input=xalan.CORRECT_INPUT_1802,
        is_cause_entry=xalan.is_cause_entry_1802,
    ),
    "Derby-1633": ScenarioSpec(
        name="Derby-1633",
        lang_scenario="minidb",
        package="minidb",
        filter_modules=("repro.workloads.minidb",),
        run_old=derby.run_old_version,
        run_new=derby.run_new_version,
        regressing_input=derby.REGRESSING_INPUT,
        correct_input=derby.CORRECT_INPUT,
        is_cause_entry=derby.is_cause_entry,
    ),
}


def run_all_scenarios(max_workers: int | None = None,
                      executor: "Executor | str | None" = None,
                      cache: "DiffCache | None" = None,
                      **kwargs) -> list[ScenarioResult]:
    """All four case studies, optionally across a thread pool.

    With ``max_workers`` > 1 and in-process execution the capture
    phases still interleave (they contend on :data:`CAPTURE_LOCK`) but
    differencing and analysis of different scenarios overlap.  Passing
    ``executor="processes"`` breaks the lock: every scenario thread
    dispatches its captures to the shared process pool, so captures of
    different scenarios run truly concurrently.  Results keep
    ``SCENARIOS`` order.

    ``cache`` is one :class:`~repro.cache.DiffCache` handle shared by
    every scenario (thread-safe, so the parallel mode shares it too):
    re-runs of unchanged scenarios skip their diffs entirely.

    Multithreaded workloads (Derby's lock daemon) interleave their own
    threads' entries by OS scheduling, so per-run diff counts can shift
    by a few entries under concurrent load — in sequential mode too.
    """
    specs = list(SCENARIOS.values())
    executor, owned = resolve_executor(executor)
    try:
        if max_workers is None or max_workers <= 1:
            return [run_scenario(spec, executor=executor, cache=cache,
                                 **kwargs)
                    for spec in specs]
        from concurrent.futures import ThreadPoolExecutor

        from repro.api.pipeline import prewarm_pool
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            # Spawn every worker before any capture installs the weaver
            # (a lazily-spawned pool thread would be traced as a stray
            # fork).
            prewarm_pool(pool, max_workers)
            return list(pool.map(
                lambda spec: run_scenario(spec, executor=executor,
                                          cache=cache, **kwargs),
                specs))
    finally:
        if owned:
            executor.close()
