"""Regression-injection framework (Sec. 5.1's experimental design).

The paper injects regressions into each post-fix Rhino version "by either
using the actual cause of the bug itself if the bug was a regression or by
using a distribution of root causes that matches the distribution found
for semantic bugs in the Mozilla project [Li et al., ASID 2006]":

    missing features     26.4%
    missing cases        17.3%
    boundary conditions  10.3%
    control flow         16.0%
    wrong expressions     5.8%
    typos                24.2%

``BugSpec`` describes one injectable regression: its root-cause category,
the engine flag that enables it, the failing (regressing) input, a similar
passing input, and a predicate recognising cause entries in a trace (the
ground truth for false-positive/negative accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.entries import TraceEntry

#: Root-cause categories with the Mozilla-project distribution weights.
ROOT_CAUSE_DISTRIBUTION: dict[str, float] = {
    "missing-feature": 0.264,
    "missing-case": 0.173,
    "boundary": 0.103,
    "control-flow": 0.160,
    "wrong-expression": 0.058,
    "typo": 0.242,
}


@dataclass(frozen=True, slots=True)
class BugSpec:
    """One injectable regression."""

    bug_id: str
    category: str
    description: str
    #: Input (workload-specific) that makes the regression manifest.
    failing_input: object
    #: A similar input on which old and new versions agree.
    passing_input: object
    #: Predicate over trace entries recognising the *cause* of the
    #: regression (used only for ground-truth scoring, never by the
    #: analysis itself).
    cause_predicate: Callable[[TraceEntry], bool] = field(
        default=lambda entry: False)
    #: How many distinct cause manifestations exist (for FN accounting).
    cause_marks: int = 1

    def __post_init__(self):
        if self.category not in ROOT_CAUSE_DISTRIBUTION:
            raise ValueError(f"unknown root-cause category: "
                             f"{self.category!r}")


class BugRegistry:
    """A named collection of injectable regressions for one workload."""

    def __init__(self, workload: str):
        self.workload = workload
        self._bugs: dict[str, BugSpec] = {}

    def register(self, spec: BugSpec) -> BugSpec:
        if spec.bug_id in self._bugs:
            raise ValueError(f"duplicate bug id: {spec.bug_id}")
        self._bugs[spec.bug_id] = spec
        return spec

    def get(self, bug_id: str) -> BugSpec:
        try:
            return self._bugs[bug_id]
        except KeyError:
            raise KeyError(f"unknown bug: {bug_id!r} "
                           f"(workload {self.workload})") from None

    def all(self) -> list[BugSpec]:
        return list(self._bugs.values())

    def ids(self) -> list[str]:
        return list(self._bugs)

    def by_category(self) -> dict[str, list[BugSpec]]:
        grouped: dict[str, list[BugSpec]] = {}
        for spec in self._bugs.values():
            grouped.setdefault(spec.category, []).append(spec)
        return grouped

    def category_mix(self) -> dict[str, float]:
        """Achieved category proportions (compare against the target
        distribution in tests)."""
        total = len(self._bugs)
        if total == 0:
            return {}
        return {category: len(specs) / total
                for category, specs in self.by_category().items()}


def cause_by_value(*values) -> Callable[[TraceEntry], bool]:
    """Cause predicate: any event whose value/args mention one of the
    given serialised values."""
    wanted = set(values)

    def predicate(entry: TraceEntry) -> bool:
        event = entry.event
        candidates = []
        value = getattr(event, "value", None)
        if value is not None:
            candidates.append(value.serialization)
        for arg in getattr(event, "args", ()) or ():
            candidates.append(arg.serialization)
        return any(c in wanted for c in candidates)

    return predicate


def cause_by_method(*method_fragments: str) -> Callable[[TraceEntry], bool]:
    """Cause predicate: events on/in methods whose qualified name contains
    one of the fragments."""

    def predicate(entry: TraceEntry) -> bool:
        event_method = getattr(entry.event, "method", "") or ""
        return any(fragment in entry.method or fragment in event_method
                   for fragment in method_fragments)

    return predicate


def cause_any(*predicates) -> Callable[[TraceEntry], bool]:
    """Disjunction of cause predicates."""

    def predicate(entry: TraceEntry) -> bool:
        return any(p(entry) for p in predicates)

    return predicate
