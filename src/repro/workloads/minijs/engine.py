"""Engine facade: version/bug configuration.

``old`` is the baseline engine.  ``new`` carries the evolution churn the
paper's experimental design requires (regressions are injected into
post-fix versions that also contain legitimate changes): a constant-
folding pass in the compiler and opcode statistics in the interpreter.
A ``bug`` id (see :mod:`repro.workloads.minijs.bug_registry`) switches
one injected regression on.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.minijs.jscompiler import JsCompiler
from repro.workloads.minijs.jsparser import parse_js
from repro.workloads.minijs.vm import Interpreter


@traced
class Engine:
    """One configured engine instance."""

    def __init__(self, version: str = "old", bug: str | None = None):
        if version not in ("old", "new"):
            raise ValueError(f"unknown engine version: {version!r}")
        if bug is not None and version == "old":
            raise ValueError("bugs are injected into the new version only")
        self.version = version
        self.bugs = frozenset() if bug is None else frozenset({bug})
        self.evolution = version == "new"

    def compile(self, source: str):
        script = parse_js(source)
        compiler = JsCompiler(bugs=self.bugs,
                              fold_constants=self.evolution)
        return compiler.compile_script(script)

    def run(self, source: str) -> list[str]:
        """Compile and execute; returns the print output lines."""
        unit = self.compile(source)
        interpreter = Interpreter(unit, bugs=self.bugs,
                                  collect_stats=self.evolution)
        return interpreter.run()

    def __repr__(self):
        suffix = f"+{next(iter(self.bugs))}" if self.bugs else ""
        return f"Engine({self.version}{suffix})"


def run_script(source: str, version: str = "old",
               bug: str | None = None) -> list[str]:
    """One-shot convenience runner."""
    return Engine(version=version, bug=bug).run(source)
