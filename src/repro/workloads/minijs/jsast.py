"""AST node types for the JavaScript-like language."""

from __future__ import annotations

from dataclasses import dataclass


class Node:
    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Num(Node):
    value: float | int


@dataclass(frozen=True, slots=True)
class Str(Node):
    value: str


@dataclass(frozen=True, slots=True)
class Bool(Node):
    value: bool


@dataclass(frozen=True, slots=True)
class Null(Node):
    pass


@dataclass(frozen=True, slots=True)
class Name(Node):
    name: str


@dataclass(frozen=True, slots=True)
class ArrayLit(Node):
    items: tuple[Node, ...]


@dataclass(frozen=True, slots=True)
class Index(Node):
    obj: Node
    index: Node


@dataclass(frozen=True, slots=True)
class Unary(Node):
    op: str  # '-' | '!'
    operand: Node


@dataclass(frozen=True, slots=True)
class Binary(Node):
    op: str
    left: Node
    right: Node


@dataclass(frozen=True, slots=True)
class LogicalAnd(Node):
    left: Node
    right: Node


@dataclass(frozen=True, slots=True)
class LogicalOr(Node):
    left: Node
    right: Node


@dataclass(frozen=True, slots=True)
class CallExpr(Node):
    func: str
    args: tuple[Node, ...]


@dataclass(frozen=True, slots=True)
class VarDecl(Node):
    name: str
    value: Node


@dataclass(frozen=True, slots=True)
class Assign(Node):
    name: str
    value: Node


@dataclass(frozen=True, slots=True)
class IndexAssign(Node):
    obj: Node
    index: Node
    value: Node


@dataclass(frozen=True, slots=True)
class ExprStmt(Node):
    expr: Node


@dataclass(frozen=True, slots=True)
class If(Node):
    condition: Node
    then_body: tuple[Node, ...]
    else_body: tuple[Node, ...] | None


@dataclass(frozen=True, slots=True)
class While(Node):
    condition: Node
    body: tuple[Node, ...]


@dataclass(frozen=True, slots=True)
class For(Node):
    init: Node | None
    condition: Node | None
    step: Node | None
    body: tuple[Node, ...]


@dataclass(frozen=True, slots=True)
class Break(Node):
    pass


@dataclass(frozen=True, slots=True)
class Continue(Node):
    pass


@dataclass(frozen=True, slots=True)
class Return(Node):
    value: Node | None


@dataclass(frozen=True, slots=True)
class FunctionDecl(Node):
    name: str
    params: tuple[str, ...]
    body: tuple[Node, ...]


@dataclass(frozen=True, slots=True)
class Script(Node):
    body: tuple[Node, ...]
