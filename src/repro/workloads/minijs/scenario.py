"""Driver helpers for the minijs quantitative assessment (Sec. 5.1).

One :class:`BugRun` per injected bug: trace the old and new (bug-carrying)
engines on the failing script, difference with both semantics, and
compute the paper's accuracy and speedup measures.  The LCS baseline's
compare cost is the modelled optimized-LCS cost (common-prefix/suffix
trim + quadratic core over the middle region); its diff count comes from
the exact LCS length (Myers' algorithm).  A cell budget reproduces the
paper's baseline failures on long traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.capture import TraceFilter, trace_call
from repro.core.lcs import (LcsBudgetExceeded, OpCounter, myers_lcs_length,
                            trim_common)
from repro.core.stats import accuracy as accuracy_ratio
from repro.core.stats import speedup as speedup_ratio
from repro.core.traces import Trace
from repro.core.view_diff import ViewDiffConfig, view_diff
from repro.workloads.bugs import BugSpec
from repro.workloads.minijs.bug_registry import MINIJS_BUGS, scaled
from repro.workloads.minijs.engine import run_script

MINIJS_FILTER = TraceFilter(include_modules=("repro.workloads.minijs",))

#: Per-bug work-loop scales: varied so trace lengths span a wide range
#: (the paper's traces ran 10K .. 1.9M entries; ours are laptop-scaled).
DEFAULT_SCALES = {
    "MF-STR-COERCE": 8,
    "MF-NEG-INDEX": 12,
    "MF-BREAK": 16,
    "MF-SUBSTR": 20,
    "MC-MOD-NEG": 25,
    "MC-EQ-MIXED": 5,     # a very small trace (the paper saw <1x here)
    "B-SUBSTR-END": 30,
    "B-FOR-INIT": 35,
    "CF-NOT-IF": 40,
    "CF-SHORTCIRCUIT": 3,  # the other very small trace
    "WE-FOLD-SUB": 42,
    "T-LE-TYPO": 60,      # beyond the baseline's memory budget
    "T-PUSH-RET": 90,     # beyond the baseline's memory budget
    "T-NOT-NULL": 120,    # beyond the baseline's memory budget
}


@dataclass(slots=True)
class BugRun:
    """Measurements for one injected regression."""

    bug_id: str
    category: str
    trace_entries: int
    views_num_diffs: int
    views_sequences: int
    views_compares: int
    views_seconds: float
    lcs_num_diffs: int | None
    lcs_compares: int | None
    lcs_failed: bool
    accuracy: float | None
    speedup: float | None

    @property
    def total_entries(self) -> int:
        return self.trace_entries


def trace_pair(spec: BugSpec, scale: int) -> tuple[Trace, Trace]:
    """Trace old and new engines on the bug's failing script."""
    source = scaled(str(spec.failing_input), scale)
    old = trace_call(run_script, source, "old", filter=MINIJS_FILTER,
                     name=f"{spec.bug_id}/old").trace
    new = trace_call(run_script, source, "new", spec.bug_id,
                     filter=MINIJS_FILTER,
                     name=f"{spec.bug_id}/new").trace
    return old, new


def run_bug(spec: BugSpec, scale: int,
            config: ViewDiffConfig | None = None,
            lcs_cell_budget: int | None = 400_000_000,
            lcs_max_d: int | None = 60_000) -> BugRun:
    """One Fig. 14 data point."""
    old, new = trace_pair(spec, scale)
    total = len(old) + len(new)

    started = time.perf_counter()
    views_counter = OpCounter()
    views_result = view_diff(old, new, config=config, counter=views_counter)
    views_seconds = time.perf_counter() - started

    keys_l = [e.key() for e in old.entries]
    keys_r = [e.key() for e in new.entries]
    prefix, mid_a, mid_b = trim_common(keys_l, keys_r)
    del prefix
    lcs_failed = False
    lcs_num_diffs: int | None = None
    lcs_compares: int | None = None
    if lcs_cell_budget is not None and mid_a * mid_b > lcs_cell_budget:
        lcs_failed = True  # the baseline's table would not fit in memory
    else:
        try:
            lcs_length = myers_lcs_length(keys_l, keys_r, max_d=lcs_max_d)
            lcs_num_diffs = total - 2 * lcs_length
            lcs_compares = mid_a * mid_b  # modelled optimized-LCS cost
        except LcsBudgetExceeded:
            lcs_failed = True
    run_accuracy = None
    run_speedup = None
    if not lcs_failed:
        run_accuracy = accuracy_ratio(total, views_result.num_diffs(),
                                      lcs_num_diffs)
        run_speedup = speedup_ratio(lcs_compares, views_counter.total)
    return BugRun(
        bug_id=spec.bug_id,
        category=spec.category,
        trace_entries=total,
        views_num_diffs=views_result.num_diffs(),
        views_sequences=len(views_result.sequences),
        views_compares=views_counter.total,
        views_seconds=views_seconds,
        lcs_num_diffs=lcs_num_diffs,
        lcs_compares=lcs_compares,
        lcs_failed=lcs_failed,
        accuracy=run_accuracy,
        speedup=run_speedup,
    )


def run_suite(scales: dict[str, int] | None = None,
              bug_ids: list[str] | None = None,
              **kwargs) -> list[BugRun]:
    """Run the whole (or a subset of the) bug suite."""
    if scales is None:
        scales = DEFAULT_SCALES
    runs = []
    for spec in MINIJS_BUGS.all():
        if bug_ids is not None and spec.bug_id not in bug_ids:
            continue
        scale = scales.get(spec.bug_id, 50)
        runs.append(run_bug(spec, scale, **kwargs))
    return runs
