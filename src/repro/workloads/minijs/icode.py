"""Icode: the intermediate form the compiler emits and the VM runs.

Mirrors Rhino's interpreter mode — a flat instruction array per function
plus a constant pool folded into the instructions.
"""

from __future__ import annotations

from repro.capture import traced

#: Opcode mnemonics.
PUSH = "PUSH"            # arg1 = constant
LOAD = "LOAD"            # arg1 = variable name
DECL = "DECL"            # arg1 = variable name (var: always this scope)
STORE = "STORE"          # arg1 = variable name (assignment: local, else
                         # enclosing global, else new local)
ARRAY = "ARRAY"          # arg1 = element count (popped)
INDEX = "INDEX"          # obj, idx -> value
STORE_INDEX = "STORE_INDEX"  # obj, idx, value ->
BINOP = "BINOP"          # arg1 = operator; rhs, lhs on stack
UNOP = "UNOP"            # arg1 = operator
JUMP = "JUMP"            # arg1 = target pc
JIF = "JIF"              # arg1 = target pc; pops, jumps when falsy
JIF_KEEP = "JIF_KEEP"    # arg1 = target; jumps when falsy, keeps value
JIT_KEEP = "JIT_KEEP"    # arg1 = target; jumps when truthy, keeps value
CALL = "CALL"            # arg1 = function name, arg2 = argc
RET = "RET"              # returns top of stack
POP = "POP"

OPCODES = (PUSH, LOAD, DECL, STORE, ARRAY, INDEX, STORE_INDEX, BINOP,
           UNOP, JUMP, JIF, JIF_KEEP, JIT_KEEP, CALL, RET, POP)


@traced
class Instr:
    """One icode instruction."""

    def __init__(self, op: str, arg1=None, arg2=None):
        self.op = op
        self.arg1 = arg1
        self.arg2 = arg2

    def __repr__(self):
        parts = [self.op]
        if self.arg1 is not None:
            parts.append(repr(self.arg1))
        if self.arg2 is not None:
            parts.append(repr(self.arg2))
        return f"Instr({' '.join(parts)})"


@traced
class FunctionCode:
    """Compiled code of one function (or the top-level script)."""

    def __init__(self, name: str, params: tuple[str, ...],
                 instrs: list[Instr]):
        self.name = name
        self.params = params
        self.instrs = instrs

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self):
        return f"FunctionCode({self.name}/{len(self.params)}, " \
               f"{len(self.instrs)} instrs)"


@traced
class CodeUnit:
    """A compiled script: top-level code plus its functions."""

    def __init__(self, main: FunctionCode,
                 functions: dict[str, FunctionCode]):
        self.main = main
        self.functions = functions

    def function(self, name: str) -> FunctionCode | None:
        return self.functions.get(name)

    def __repr__(self):
        return f"CodeUnit(main={len(self.main)} instrs, " \
               f"{len(self.functions)} functions)"
