"""The 14 injectable minijs regressions (Sec. 5.1 experimental design).

Categories follow the Mozilla root-cause distribution the paper samples
from; each bug carries a failing script (the regressing test case), a
similar passing script (the alternate, non-regressing test case), and a
ground-truth cause predicate.  Every script starts with a ``work`` loop
whose iteration count is set by the ``{N}`` placeholder, letting the
benches scale trace length (the paper's traces ranged 10K-1.9M entries).
"""

from __future__ import annotations

from repro.workloads.bugs import (BugRegistry, BugSpec, cause_any,
                                  cause_by_method, cause_by_value)

#: Trace-fattening preamble shared by all scripts.
WORK_PREAMBLE = """
function work(n) {
    var total = 0;
    var i = 0;
    while (i < n) {
        total = total + i * 3 % 7;
        i = i + 1;
    }
    return total;
}
print(work({N}));
"""


def script(body: str) -> str:
    return WORK_PREAMBLE + body


MINIJS_BUGS = BugRegistry("minijs")

MINIJS_BUGS.register(BugSpec(
    bug_id="MF-STR-COERCE",
    category="missing-feature",
    description="string + number concatenation coercion dropped",
    failing_input=script("""
        var parts = "";
        var i = 0;
        while (i < 8) {
            parts = parts + "v" + i;
            i = i + 1;
        }
        print(parts);
    """),
    passing_input=script("""
        var parts = "";
        var i = 0;
        while (i < 8) {
            parts = parts + "v" + str(i);
            i = i + 1;
        }
        print(parts);
    """),
    cause_predicate=cause_by_method("Interpreter.add"),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="MF-NEG-INDEX",
    category="missing-feature",
    description="negative (from-the-end) array indexing dropped",
    failing_input=script("""
        var arr = [10, 20, 30, 40];
        var i = 0;
        var sum = 0;
        while (i < 4) {
            sum = sum + arr[0 - 1 - i];
            i = i + 1;
        }
        print(sum);
    """),
    passing_input=script("""
        var arr = [10, 20, 30, 40];
        var i = 0;
        var sum = 0;
        while (i < 4) {
            sum = sum + arr[len(arr) - 1 - i];
            i = i + 1;
        }
        print(sum);
    """),
    cause_predicate=cause_by_method("Interpreter.index_read"),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="MF-BREAK",
    category="missing-feature",
    description="break statements compile to nothing",
    failing_input=script("""
        var i = 0;
        var sum = 0;
        while (i < 20) {
            if (i == 5) { break; }
            sum = sum + i;
            i = i + 1;
        }
        print(sum);
    """),
    passing_input=script("""
        var i = 0;
        var sum = 0;
        while (i < 5) {
            sum = sum + i;
            i = i + 1;
        }
        print(sum);
    """),
    cause_predicate=cause_by_method("JsCompiler.compile_break",
                                    "compile_break"),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="MF-SUBSTR",
    category="missing-feature",
    description="substr ignores its end bound",
    failing_input=script("""
        var text = "abcdefghij";
        var i = 0;
        while (i < 5) {
            print(substr(text, i, i + 3));
            i = i + 1;
        }
    """),
    passing_input=script("""
        var text = "abcdefghij";
        var i = 0;
        while (i < 5) {
            print(substr(text, i, len(text)));
            i = i + 1;
        }
    """),
    cause_predicate=cause_by_method("Builtins.call"),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="MC-MOD-NEG",
    category="missing-case",
    description="modulo of negative dividends uses floored semantics",
    failing_input=script("""
        var i = 0;
        var sum = 0;
        while (i < 6) {
            sum = sum + (0 - 7 - i) % 3;
            i = i + 1;
        }
        print(sum);
    """),
    passing_input=script("""
        var i = 0;
        var sum = 0;
        while (i < 6) {
            sum = sum + (7 + i) % 3;
            i = i + 1;
        }
        print(sum);
    """),
    cause_predicate=cause_by_method("Interpreter.modulo"),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="MC-EQ-MIXED",
    category="missing-case",
    description="int/float cross-type equality case lost",
    failing_input=script("""
        var hits = 0;
        var i = 0;
        while (i < 6) {
            if (i == i * 1.0) { hits = hits + 1; }
            i = i + 1;
        }
        print(hits);
    """),
    passing_input=script("""
        var hits = 0;
        var i = 0;
        while (i < 6) {
            if (i == i) { hits = hits + 1; }
            i = i + 1;
        }
        print(hits);
    """),
    cause_predicate=cause_by_method("Interpreter.equals"),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="B-SUBSTR-END",
    category="boundary",
    description="substr end bound off by one at the string tail",
    failing_input=script("""
        var text = "abcdefghij";
        var out = "";
        var i = 0;
        while (i < 4) {
            out = out + substr(text, i, i + 2);
            i = i + 1;
        }
        print(out);
    """),
    passing_input=script("""
        var text = "abcdefghij";
        var out = "";
        var i = 0;
        while (i < 4) {
            out = out + charAt(text, i) + charAt(text, i + 1);
            i = i + 1;
        }
        print(out);
    """),
    cause_predicate=cause_by_method("Builtins.call"),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="B-FOR-INIT",
    category="boundary",
    description="for loops run their step once before the first test",
    failing_input=script("""
        var sum = 0;
        var count = 0;
        for (var i = 0; i < 6; i = i + 1) {
            sum = sum + i + 10;
            count = count + 1;
        }
        print(sum);
        print(count);
    """),
    passing_input=script("""
        var sum = 0;
        var count = 0;
        var i = 0;
        while (i < 6) {
            sum = sum + i + 10;
            count = count + 1;
            i = i + 1;
        }
        print(sum);
        print(count);
    """),
    cause_predicate=cause_by_method("JsCompiler.compile_for",
                                    "compile_for"),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="CF-NOT-IF",
    category="control-flow",
    description="if(!cond) loses its negation in the compiler",
    failing_input=script("""
        var done = false;
        var count = 0;
        var i = 0;
        while (i < 6) {
            if (!done) { count = count + 1; }
            if (i == 3) { done = true; }
            i = i + 1;
        }
        print(count);
    """),
    passing_input=script("""
        var done = false;
        var count = 0;
        var i = 0;
        while (i < 6) {
            if (done == false) { count = count + 1; }
            if (i == 3) { done = true; }
            i = i + 1;
        }
        print(count);
    """),
    cause_predicate=cause_by_method("JsCompiler.compile_if",
                                    "compile_if"),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="CF-SHORTCIRCUIT",
    category="control-flow",
    description="&& stops short-circuiting (right side always runs)",
    failing_input=script("""
        var calls = 0;
        function bump(x) {
            calls = calls + 1;
            return x;
        }
        var i = 0;
        var hits = 0;
        while (i < 6) {
            if (i > 2 && bump(true)) { hits = hits + 1; }
            i = i + 1;
        }
        print(hits);
        print(calls);
    """),
    passing_input=script("""
        var calls = 0;
        function bump(x) {
            calls = calls + 1;
            return x;
        }
        var i = 0;
        var hits = 0;
        while (i < 6) {
            if (i > 2) { if (bump(true)) { hits = hits + 1; } }
            i = i + 1;
        }
        print(hits);
        print(calls);
    """),
    cause_predicate=cause_any(cause_by_method("bump"),
                              cause_by_value(6, 3)),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="WE-FOLD-SUB",
    category="wrong-expression",
    description="constant folding computes a-b as b-a",
    failing_input=script("""
        var base = 100 - 42;
        var i = 0;
        var sum = 0;
        while (i < 5) {
            sum = sum + base;
            i = i + 1;
        }
        print(sum);
    """),
    passing_input=script("""
        var base = 100 + 42;
        var i = 0;
        var sum = 0;
        while (i < 5) {
            sum = sum + base;
            i = i + 1;
        }
        print(sum);
    """),
    cause_predicate=cause_any(cause_by_method("JsCompiler.try_fold",
                                              "try_fold"),
                              cause_by_value(-58, 58)),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="T-LE-TYPO",
    category="typo",
    description="<= dispatches to the < implementation",
    failing_input=script("""
        var i = 0;
        var sum = 0;
        while (i <= 5) {
            sum = sum + 1;
            i = i + 1;
        }
        print(sum);
    """),
    passing_input=script("""
        var i = 0;
        var sum = 0;
        while (i < 6) {
            sum = sum + 1;
            i = i + 1;
        }
        print(sum);
    """),
    cause_predicate=cause_by_method("Interpreter.compare"),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="T-PUSH-RET",
    category="typo",
    description="push returns the pre-append length",
    failing_input=script("""
        var arr = [];
        var i = 0;
        var total = 0;
        while (i < 6) {
            total = total + push(arr, i);
            i = i + 1;
        }
        print(total);
        print(len(arr));
    """),
    passing_input=script("""
        var arr = [];
        var i = 0;
        while (i < 6) {
            push(arr, i);
            i = i + 1;
        }
        print(len(arr));
    """),
    cause_predicate=cause_by_method("Builtins.call"),
))

MINIJS_BUGS.register(BugSpec(
    bug_id="T-NOT-NULL",
    category="typo",
    description="!null evaluates to false (inverted None test)",
    failing_input=script("""
        var maybe = null;
        var count = 0;
        var i = 0;
        while (i < 6) {
            if (!maybe) { count = count + 1; }
            i = i + 1;
        }
        print(count);
    """),
    passing_input=script("""
        var maybe = null;
        var count = 0;
        var i = 0;
        while (i < 6) {
            if (maybe == null) { count = count + 1; }
            i = i + 1;
        }
        print(count);
    """),
    cause_predicate=cause_by_method("Interpreter.apply_unop"),
))


def scaled(source: str, n: int) -> str:
    """Substitute the work-loop scale."""
    return source.replace("{N}", str(n))


def bug_ids() -> list[str]:
    return MINIJS_BUGS.ids()
