"""The icode interpreter (Rhino's interpretive mode analogue).

Several injectable regressions live here (see the bug registry):
``MF-STR-COERCE``, ``MF-NEG-INDEX``, ``MC-MOD-NEG``, ``MC-EQ-MIXED``,
``CF-SHORTCIRCUIT``, ``T-LE-TYPO``, ``T-NOT-NULL``, plus the builtins'
``MF-SUBSTR``, ``B-SUBSTR-END``, ``T-PUSH-RET``.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.minijs.icode import (ARRAY, BINOP, CALL, CodeUnit,
                                          DECL, FunctionCode, INDEX, JIF,
                                          JIF_KEEP, JIT_KEEP, JUMP, LOAD,
                                          POP, PUSH, RET, STORE,
                                          STORE_INDEX, UNOP)


class JsRuntimeError(Exception):
    """Dynamic error during script execution."""


def truthy(value) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return value != ""
    if isinstance(value, list):
        return True
    return bool(value)


def display(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if isinstance(value, list):
        return "[" + ", ".join(display(v) for v in value) + "]"
    return str(value)


@traced
class Frame:
    """One activation record."""

    def __init__(self, code: FunctionCode):
        self.code = code
        self._pc = 0
        self._stack = []
        self.variables = {}

    @property
    def pc(self) -> int:
        return self._pc

    @pc.setter
    def pc(self, value: int) -> None:
        self._pc = value

    def push(self, value) -> None:
        self._stack.append(value)

    def pop(self):
        if not self._stack:
            raise JsRuntimeError("operand stack underflow")
        return self._stack.pop()

    def peek(self):
        if not self._stack:
            raise JsRuntimeError("operand stack underflow")
        return self._stack[-1]

    def __repr__(self):
        return f"Frame({self.code.name}@{self._pc})"


@traced
class Builtins:
    """Built-in functions (print/len/push/charAt/substr/str/abs)."""

    def __init__(self, bugs: frozenset[str], output: list[str]):
        self._bugs = bugs
        self._output = output

    def call(self, name: str, args: list):
        if name == "print":
            self._output.append(" ".join(display(a) for a in args))
            return None
        if name == "len":
            return len(args[0])
        if name == "push":
            args[0].append(args[1])
            if "T-PUSH-RET" in self._bugs:
                # BUG (typo): off-by-one on the returned new length.
                return len(args[0]) - 1
            return len(args[0])
        if name == "charAt":
            text, at = args
            if 0 <= at < len(text):
                return text[at]
            return ""
        if name == "substr":
            text, start, end = args
            if "MF-SUBSTR" in self._bugs:
                # BUG (missing feature): the end bound is ignored.
                return text[start:]
            if "B-SUBSTR-END" in self._bugs:
                # BUG (boundary): exclusive bound treated as len-1 cap.
                return text[start:max(start, end - 1)]
            return text[start:end]
        if name == "str":
            return display(args[0])
        if name == "abs":
            return abs(args[0])
        raise JsRuntimeError(f"unknown function: {name}")

    def known(self, name: str) -> bool:
        return name in ("print", "len", "push", "charAt", "substr", "str",
                        "abs")

    def __repr__(self):
        return "Builtins"


@traced
class Interpreter:
    """Executes a :class:`CodeUnit`."""

    MAX_STEPS = 2_000_000

    def __init__(self, unit: CodeUnit, bugs: frozenset[str] = frozenset(),
                 collect_stats: bool = False):
        self.unit = unit
        self._bugs = bugs
        self.output: list[str] = []
        self.builtins = Builtins(bugs, self.output)
        self.globals: dict[str, object] = {}
        self._steps = 0
        self.collect_stats = collect_stats
        self.functions_entered = 0
        self._op_counts: dict[str, int] = {}

    # -- driver ----------------------------------------------------------------

    def run(self) -> list[str]:
        # Top-level variables are the globals functions close over.
        self.run_code(self.unit.main, self.globals)
        return list(self.output)

    def run_code(self, code: FunctionCode, variables: dict):
        if self.collect_stats:
            self.note_entry(code.name)
        frame = Frame(code)
        frame.variables = variables
        while frame._pc < len(code.instrs):
            self._steps += 1
            if self._steps > self.MAX_STEPS:
                raise JsRuntimeError("step budget exhausted")
            instr = code.instrs[frame._pc]
            if self.collect_stats:
                self._op_counts[instr.op] = \
                    self._op_counts.get(instr.op, 0) + 1
            result = self.execute(instr, frame)
            if result is not None:
                return result[0]
        return None

    @property
    def steps(self) -> int:
        return self._steps

    def note_entry(self, name: str) -> None:
        """Evolution churn in the new version: per-call statistics."""
        self.functions_entered = self.functions_entered + 1

    # -- instruction dispatch ------------------------------------------------------

    def execute(self, instr, frame: Frame):
        """Execute one instruction; returns ``(value,)`` on RET."""
        op = instr.op
        if op == PUSH:
            frame.push(instr.arg1)
        elif op == LOAD:
            frame.push(self.load_var(frame, instr.arg1))
        elif op == DECL:
            frame.variables[instr.arg1] = frame.pop()
        elif op == STORE:
            self.store_var(frame, instr.arg1, frame.pop())
        elif op == ARRAY:
            count = instr.arg1
            items = [frame.pop() for _ in range(count)][::-1]
            frame.push(items)
        elif op == INDEX:
            index = frame.pop()
            obj = frame.pop()
            frame.push(self.index_read(obj, index))
        elif op == STORE_INDEX:
            value = frame.pop()
            index = frame.pop()
            obj = frame.pop()
            self.index_write(obj, index, value)
        elif op == BINOP:
            right = frame.pop()
            left = frame.pop()
            frame.push(self.apply_binop(instr.arg1, left, right))
        elif op == UNOP:
            frame.push(self.apply_unop(instr.arg1, frame.pop()))
        elif op == JUMP:
            frame.pc = instr.arg1
            return None
        elif op == JIF:
            value = frame.pop()
            if not truthy(value):
                frame.pc = instr.arg1
                return None
        elif op == JIF_KEEP:
            if "CF-SHORTCIRCUIT" in self._bugs:
                # BUG (control flow): && no longer short-circuits — fall
                # through into the right operand unconditionally.
                frame.pc += 1
                return None
            if not truthy(frame.peek()):
                frame.pc = instr.arg1
                return None
        elif op == JIT_KEEP:
            if truthy(frame.peek()):
                frame.pc = instr.arg1
                return None
        elif op == CALL:
            frame.push(self.call(instr.arg1, instr.arg2, frame))
        elif op == RET:
            return (frame.pop(),)
        elif op == POP:
            frame.pop()
        else:
            raise JsRuntimeError(f"unknown opcode: {op}")
        frame.pc += 1
        return None

    # -- operations ---------------------------------------------------------------

    def store_var(self, frame: Frame, name: str, value) -> None:
        if name in frame.variables:
            frame.variables[name] = value
        elif name in self.globals:
            self.globals[name] = value
        else:
            frame.variables[name] = value

    def load_var(self, frame: Frame, name: str):
        if name in frame.variables:
            return frame.variables[name]
        if name in self.globals:
            return self.globals[name]
        raise JsRuntimeError(f"undefined variable: {name}")

    def index_read(self, obj, index):
        if not isinstance(obj, (list, str)):
            raise JsRuntimeError("indexing a non-array value")
        if not isinstance(index, int) or isinstance(index, bool):
            raise JsRuntimeError("array index must be an integer")
        if index < 0:
            if "MF-NEG-INDEX" in self._bugs:
                # BUG (missing feature): from-the-end indexing dropped.
                return None
            if -index <= len(obj):
                return obj[index]
            return None
        if index >= len(obj):
            return None
        return obj[index]

    def index_write(self, obj, index, value) -> None:
        if not isinstance(obj, list):
            raise JsRuntimeError("assigning into a non-array value")
        if not isinstance(index, int) or isinstance(index, bool):
            raise JsRuntimeError("array index must be an integer")
        if 0 <= index < len(obj):
            obj[index] = value
        elif index == len(obj):
            obj.append(value)
        else:
            raise JsRuntimeError(f"index {index} out of bounds")

    def apply_binop(self, op: str, left, right):
        if op == "+":
            return self.add(left, right)
        if op in ("-", "*", "/", "%"):
            self.require_numbers(op, left, right)
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise JsRuntimeError("division by zero")
                result = left / right
                if isinstance(left, int) and isinstance(right, int) \
                        and result.is_integer():
                    return int(result)
                return result
            return self.modulo(left, right)
        if op == "==":
            return self.equals(left, right)
        if op == "!=":
            return not self.equals(left, right)
        if op in ("<", "<=", ">", ">="):
            return self.compare(op, left, right)
        raise JsRuntimeError(f"unknown operator: {op}")

    def add(self, left, right):
        if isinstance(left, str) or isinstance(right, str):
            if "MF-STR-COERCE" in self._bugs and not (
                    isinstance(left, str) and isinstance(right, str)):
                # BUG (missing feature): number->string coercion dropped.
                raise JsRuntimeError("cannot add string and number")
            return js_concat(left, right)
        return left + right

    def modulo(self, left, right):
        if right == 0:
            raise JsRuntimeError("modulo by zero")
        if "MC-MOD-NEG" in self._bugs and left < 0:
            # BUG (missing case): negative dividends fall through to the
            # floored (Python) semantics instead of truncated (JS).
            return left % right
        quotient = int(left / right)  # truncated division (JS semantics)
        return left - quotient * right

    def equals(self, left, right) -> bool:
        if "MC-EQ-MIXED" in self._bugs:
            # BUG (missing case): int/float cross-type comparison lost.
            if isinstance(left, int) != isinstance(right, int):
                return False
        return left == right

    def compare(self, op: str, left, right) -> bool:
        self.require_comparable(op, left, right)
        if op == "<":
            return left < right
        if op == "<=":
            if "T-LE-TYPO" in self._bugs:
                # BUG (typo): <= dispatches to the < implementation.
                return left < right
            return left <= right
        if op == ">":
            return left > right
        return left >= right

    def apply_unop(self, op: str, value):
        if op == "-":
            self.require_numbers(op, value, 0)
            return -value
        if op == "!":
            if "T-NOT-NULL" in self._bugs and value is None:
                # BUG (typo): `is not None` where `is None` was meant.
                return False
            return not truthy(value)
        raise JsRuntimeError(f"unknown unary operator: {op}")

    def require_numbers(self, op: str, left, right) -> None:
        for value in (left, right):
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                raise JsRuntimeError(f"operator {op!r} needs numbers")

    def require_comparable(self, op: str, left, right) -> None:
        if isinstance(left, str) != isinstance(right, str):
            raise JsRuntimeError(f"operator {op!r} on mixed types")

    # -- calls -----------------------------------------------------------------------

    def call(self, name: str, argc: int, frame: Frame):
        args = [frame.pop() for _ in range(argc)][::-1]
        code = self.unit.function(name)
        if code is not None:
            if len(code.params) != len(args):
                raise JsRuntimeError(
                    f"{name} expects {len(code.params)} args, "
                    f"got {len(args)}")
            variables = dict(zip(code.params, args))
            return self.run_code(code, variables)
        if self.builtins.known(name):
            return self.builtins.call(name, args)
        raise JsRuntimeError(f"unknown function: {name}")

    def __repr__(self):
        return f"Interpreter(steps={self._steps})"


# The string-concat path of ``add`` above needs the full JS behaviour:
# left + right with coercion.  Implemented as a module function so the
# buggy path in ``add`` stays small.
def js_concat(left, right) -> str:
    return display(left) + display(right)
