"""Pratt parser: token stream -> AST."""

from __future__ import annotations

from repro.workloads.minijs import jsast as ast
from repro.workloads.minijs.tokens import JsSyntaxError, Tok, tokenize_js

#: Binding powers for binary operators (higher binds tighter).
BINDING = {
    "||": 10,
    "&&": 20,
    "==": 30, "!=": 30,
    "<": 40, "<=": 40, ">": 40, ">=": 40,
    "+": 50, "-": 50,
    "*": 60, "/": 60, "%": 60,
}


class JsParser:
    def __init__(self, tokens: list[Tok]):
        self.tokens = tokens
        self.at = 0

    # -- token plumbing -------------------------------------------------------

    def peek(self) -> Tok:
        return self.tokens[self.at]

    def advance(self) -> Tok:
        token = self.tokens[self.at]
        if token.kind != "eof":
            self.at += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> Tok | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Tok:
        token = self.accept(kind, text)
        if token is None:
            found = self.peek()
            want = text if text is not None else kind
            raise JsSyntaxError(
                f"expected {want!r}, found {found.text!r} "
                f"(line {found.line})")
        return token

    # -- entry ---------------------------------------------------------------

    def parse_script(self) -> ast.Script:
        body = []
        while self.peek().kind != "eof":
            body.append(self.statement())
        return ast.Script(body=tuple(body))

    # -- statements -------------------------------------------------------------

    def statement(self) -> ast.Node:
        token = self.peek()
        if token.kind == "kw":
            if token.text == "var":
                return self.var_decl()
            if token.text == "function":
                return self.function_decl()
            if token.text == "if":
                return self.if_statement()
            if token.text == "while":
                return self.while_statement()
            if token.text == "for":
                return self.for_statement()
            if token.text == "return":
                self.advance()
                value = None
                if not self.accept("punct", ";"):
                    value = self.expression()
                    self.expect("punct", ";")
                return ast.Return(value=value)
            if token.text == "break":
                self.advance()
                self.expect("punct", ";")
                return ast.Break()
            if token.text == "continue":
                self.advance()
                self.expect("punct", ";")
                return ast.Continue()
        return self.expression_statement()

    def var_decl(self) -> ast.VarDecl:
        self.expect("kw", "var")
        name = self.expect("name").text
        self.expect("op", "=")
        value = self.expression()
        self.expect("punct", ";")
        return ast.VarDecl(name=name, value=value)

    def function_decl(self) -> ast.FunctionDecl:
        self.expect("kw", "function")
        name = self.expect("name").text
        self.expect("punct", "(")
        params = []
        if not self.accept("punct", ")"):
            while True:
                params.append(self.expect("name").text)
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        body = self.block()
        return ast.FunctionDecl(name=name, params=tuple(params),
                                body=body)

    def block(self) -> tuple[ast.Node, ...]:
        self.expect("punct", "{")
        body = []
        while not self.accept("punct", "}"):
            body.append(self.statement())
        return tuple(body)

    def if_statement(self) -> ast.If:
        self.expect("kw", "if")
        self.expect("punct", "(")
        condition = self.expression()
        self.expect("punct", ")")
        then_body = self.block()
        else_body = None
        if self.accept("kw", "else"):
            if self.peek().kind == "kw" and self.peek().text == "if":
                else_body = (self.if_statement(),)
            else:
                else_body = self.block()
        return ast.If(condition=condition, then_body=then_body,
                      else_body=else_body)

    def while_statement(self) -> ast.While:
        self.expect("kw", "while")
        self.expect("punct", "(")
        condition = self.expression()
        self.expect("punct", ")")
        return ast.While(condition=condition, body=self.block())

    def for_statement(self) -> ast.For:
        self.expect("kw", "for")
        self.expect("punct", "(")
        init = None
        if not self.accept("punct", ";"):
            if self.peek().kind == "kw" and self.peek().text == "var":
                init = self.var_decl()
            else:
                init = ast.ExprStmt(self.assignment_or_expression())
                self.expect("punct", ";")
        condition = None
        if not self.accept("punct", ";"):
            condition = self.expression()
            self.expect("punct", ";")
        step = None
        if not self.accept("punct", ")"):
            step = ast.ExprStmt(self.assignment_or_expression())
            self.expect("punct", ")")
        return ast.For(init=init, condition=condition, step=step,
                       body=self.block())

    def expression_statement(self) -> ast.Node:
        expr = self.assignment_or_expression()
        self.expect("punct", ";")
        if isinstance(expr, (ast.Assign, ast.IndexAssign, ast.VarDecl)):
            return expr
        return ast.ExprStmt(expr=expr)

    def assignment_or_expression(self) -> ast.Node:
        expr = self.expression()
        if self.accept("op", "="):
            value = self.assignment_or_expression()
            if isinstance(expr, ast.Name):
                return ast.Assign(name=expr.name, value=value)
            if isinstance(expr, ast.Index):
                return ast.IndexAssign(obj=expr.obj, index=expr.index,
                                       value=value)
            raise JsSyntaxError("invalid assignment target")
        return expr

    # -- expressions (Pratt) --------------------------------------------------------

    def expression(self, min_binding: int = 0) -> ast.Node:
        left = self.unary()
        while True:
            token = self.peek()
            if token.kind != "op" or token.text not in BINDING:
                return left
            power = BINDING[token.text]
            if power < min_binding:
                return left
            op = self.advance().text
            right = self.expression(power + 1)
            if op == "&&":
                left = ast.LogicalAnd(left=left, right=right)
            elif op == "||":
                left = ast.LogicalOr(left=left, right=right)
            else:
                left = ast.Binary(op=op, left=left, right=right)

    def unary(self) -> ast.Node:
        if self.accept("op", "-"):
            return ast.Unary(op="-", operand=self.unary())
        if self.accept("op", "!"):
            return ast.Unary(op="!", operand=self.unary())
        return self.postfix()

    def postfix(self) -> ast.Node:
        expr = self.primary()
        while True:
            if self.accept("punct", "["):
                index = self.expression()
                self.expect("punct", "]")
                expr = ast.Index(obj=expr, index=index)
                continue
            return expr

    def primary(self) -> ast.Node:
        token = self.peek()
        if token.kind == "num":
            self.advance()
            if "." in token.text:
                return ast.Num(value=float(token.text))
            return ast.Num(value=int(token.text))
        if token.kind == "str":
            self.advance()
            return ast.Str(value=token.text)
        if token.kind == "kw" and token.text in ("true", "false"):
            self.advance()
            return ast.Bool(value=token.text == "true")
        if token.kind == "kw" and token.text == "null":
            self.advance()
            return ast.Null()
        if token.kind == "name":
            name = self.advance().text
            if self.accept("punct", "("):
                args = []
                if not self.accept("punct", ")"):
                    while True:
                        args.append(self.expression())
                        if not self.accept("punct", ","):
                            break
                    self.expect("punct", ")")
                return ast.CallExpr(func=name, args=tuple(args))
            return ast.Name(name=name)
        if self.accept("punct", "("):
            expr = self.expression()
            self.expect("punct", ")")
            return expr
        if self.accept("punct", "["):
            items = []
            if not self.accept("punct", "]"):
                while True:
                    items.append(self.expression())
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", "]")
            return ast.ArrayLit(items=tuple(items))
        raise JsSyntaxError(f"unexpected token {token.text!r} "
                            f"(line {token.line})")


def parse_js(source: str) -> ast.Script:
    """Parse a script into its AST."""
    return JsParser(tokenize_js(source)).parse_script()
