"""The Rhino analogue: a small JavaScript-like engine.

Rhino compiles JavaScript to an intermediate form ("icode") which is then
interpreted (the mode the paper traces, "as it produced longer and more
complex traces").  This package follows the same architecture:

* :mod:`repro.workloads.minijs.tokens` — lexer,
* :mod:`repro.workloads.minijs.jsparser` — Pratt parser to AST,
* :mod:`repro.workloads.minijs.jscompiler` — AST -> icode compiler
  (with the new version's constant-folding evolution pass),
* :mod:`repro.workloads.minijs.vm` — the icode interpreter,
* :mod:`repro.workloads.minijs.engine` — version/bug configuration,
* :mod:`repro.workloads.minijs.bug_registry` — the 14 injectable
  regressions following the Sec. 5.1 root-cause distribution.
"""

from repro.workloads.minijs.bug_registry import MINIJS_BUGS
from repro.workloads.minijs.engine import Engine, run_script

__all__ = ["Engine", "MINIJS_BUGS", "run_script"]
