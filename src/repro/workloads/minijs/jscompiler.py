"""AST -> icode compiler.

The new engine version adds a constant-folding pass (benign evolution
churn).  Two injectable regressions live here:

* ``WE-FOLD-SUB`` (wrong expression): folding of constant subtraction
  computes the operands in the wrong order.
* ``B-FOR-INIT`` (boundary): ``for`` loops emit the step once before the
  first condition check, losing the first iteration.
* ``MF-BREAK`` (missing feature): ``break`` compiles to a no-op.
* ``CF-NOT-IF`` (control flow): ``if (!cond)`` "optimises" the negation
  away, inverting the branch.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.minijs import jsast as ast
from repro.workloads.minijs.icode import (ARRAY, BINOP, CALL, CodeUnit,
                                          DECL, FunctionCode, INDEX, Instr,
                                          JIF, JIF_KEEP, JIT_KEEP, JUMP,
                                          LOAD, POP, PUSH, RET, STORE,
                                          STORE_INDEX, UNOP)
from repro.workloads.minijs.tokens import JsSyntaxError

#: Operators the folding pass understands.
FOLDABLE = {"+", "-", "*"}


@traced
class JsCompiler:
    """Compiles a script AST into a :class:`CodeUnit`."""

    def __init__(self, bugs: frozenset[str] = frozenset(),
                 fold_constants: bool = False):
        self._bugs = bugs
        self._fold_constants = fold_constants
        self.functions: dict[str, FunctionCode] = {}

    # -- entry ---------------------------------------------------------------

    def compile_script(self, script: ast.Script) -> CodeUnit:
        statements = []
        for statement in script.body:
            if isinstance(statement, ast.FunctionDecl):
                self.compile_function(statement)
            else:
                statements.append(statement)
        instrs: list[Instr] = []
        self.compile_block(tuple(statements), instrs, loop=None)
        return CodeUnit(FunctionCode("<main>", (), instrs),
                        dict(self.functions))

    def compile_function(self, decl: ast.FunctionDecl) -> FunctionCode:
        instrs: list[Instr] = []
        self.compile_block(decl.body, instrs, loop=None)
        instrs.append(Instr(PUSH, None))
        instrs.append(Instr(RET))
        code = FunctionCode(decl.name, decl.params, instrs)
        self.functions[decl.name] = code
        return code

    # -- statements --------------------------------------------------------------

    def compile_block(self, body, instrs: list[Instr], loop) -> None:
        for statement in body:
            self.compile_statement(statement, instrs, loop)

    def compile_statement(self, statement, instrs: list[Instr],
                          loop) -> None:
        if isinstance(statement, ast.VarDecl):
            self.compile_expr(statement.value, instrs)
            instrs.append(Instr(DECL, statement.name))
        elif isinstance(statement, ast.Assign):
            self.compile_expr(statement.value, instrs)
            instrs.append(Instr(STORE, statement.name))
        elif isinstance(statement, ast.IndexAssign):
            self.compile_expr(statement.obj, instrs)
            self.compile_expr(statement.index, instrs)
            self.compile_expr(statement.value, instrs)
            instrs.append(Instr(STORE_INDEX))
        elif isinstance(statement, ast.ExprStmt):
            # for-steps arrive as ExprStmt-wrapped assignments.
            if isinstance(statement.expr, (ast.Assign, ast.IndexAssign,
                                           ast.VarDecl)):
                self.compile_statement(statement.expr, instrs, loop)
            else:
                self.compile_expr(statement.expr, instrs)
                instrs.append(Instr(POP))
        elif isinstance(statement, ast.If):
            self.compile_if(statement, instrs, loop)
        elif isinstance(statement, ast.While):
            self.compile_while(statement, instrs)
        elif isinstance(statement, ast.For):
            self.compile_for(statement, instrs)
        elif isinstance(statement, ast.Break):
            self.compile_break(instrs, loop)
        elif isinstance(statement, ast.Continue):
            if loop is None:
                raise JsSyntaxError("continue outside a loop")
            loop["continues"].append(len(instrs))
            instrs.append(Instr(JUMP, None))
        elif isinstance(statement, ast.Return):
            if statement.value is None:
                instrs.append(Instr(PUSH, None))
            else:
                self.compile_expr(statement.value, instrs)
            instrs.append(Instr(RET))
        elif isinstance(statement, ast.FunctionDecl):
            self.compile_function(statement)
        else:
            raise JsSyntaxError(f"uncompilable statement: {statement!r}")

    def compile_break(self, instrs: list[Instr], loop) -> None:
        if loop is None:
            raise JsSyntaxError("break outside a loop")
        if "MF-BREAK" in self._bugs:
            # BUG (missing feature): break emits nothing.
            return
        loop["breaks"].append(len(instrs))
        instrs.append(Instr(JUMP, None))

    def compile_if(self, statement: ast.If, instrs: list[Instr],
                   loop) -> None:
        condition = statement.condition
        invert = False
        if ("CF-NOT-IF" in self._bugs
                and isinstance(condition, ast.Unary)
                and condition.op == "!"):
            # BUG (control flow): "strength-reduce" if(!c) by dropping
            # the negation — without swapping the branches.
            condition = condition.operand
            invert = False  # the missing swap is the bug
        del invert
        self.compile_expr(condition, instrs)
        jif_at = len(instrs)
        instrs.append(Instr(JIF, None))
        self.compile_block(statement.then_body, instrs, loop)
        if statement.else_body is None:
            instrs[jif_at] = Instr(JIF, len(instrs))
        else:
            jump_at = len(instrs)
            instrs.append(Instr(JUMP, None))
            instrs[jif_at] = Instr(JIF, len(instrs))
            self.compile_block(statement.else_body, instrs, loop)
            instrs[jump_at] = Instr(JUMP, len(instrs))

    def compile_while(self, statement: ast.While,
                      instrs: list[Instr]) -> None:
        loop = {"breaks": [], "continues": []}
        top = len(instrs)
        self.compile_expr(statement.condition, instrs)
        jif_at = len(instrs)
        instrs.append(Instr(JIF, None))
        self.compile_block(statement.body, instrs, loop)
        instrs.append(Instr(JUMP, top))
        end = len(instrs)
        instrs[jif_at] = Instr(JIF, end)
        self.patch_loop(instrs, loop, break_to=end, continue_to=top)

    def compile_for(self, statement: ast.For,
                    instrs: list[Instr]) -> None:
        loop = {"breaks": [], "continues": []}
        if statement.init is not None:
            self.compile_statement(statement.init, instrs, None)
        if "B-FOR-INIT" in self._bugs and statement.step is not None:
            # BUG (boundary): the step runs once before the first
            # condition test, so the loop starts one element late.
            self.compile_statement(statement.step, instrs, None)
        top = len(instrs)
        jif_at = None
        if statement.condition is not None:
            self.compile_expr(statement.condition, instrs)
            jif_at = len(instrs)
            instrs.append(Instr(JIF, None))
        self.compile_block(statement.body, instrs, loop)
        step_at = len(instrs)
        if statement.step is not None:
            self.compile_statement(statement.step, instrs, None)
        instrs.append(Instr(JUMP, top))
        end = len(instrs)
        if jif_at is not None:
            instrs[jif_at] = Instr(JIF, end)
        self.patch_loop(instrs, loop, break_to=end, continue_to=step_at)

    def patch_loop(self, instrs: list[Instr], loop, break_to: int,
                   continue_to: int) -> None:
        for at in loop["breaks"]:
            instrs[at] = Instr(JUMP, break_to)
        for at in loop["continues"]:
            instrs[at] = Instr(JUMP, continue_to)

    # -- expressions -----------------------------------------------------------------

    def compile_expr(self, expr, instrs: list[Instr]) -> None:
        if isinstance(expr, (ast.Num, ast.Str, ast.Bool)):
            instrs.append(Instr(PUSH, expr.value))
        elif isinstance(expr, ast.Null):
            instrs.append(Instr(PUSH, None))
        elif isinstance(expr, ast.Name):
            instrs.append(Instr(LOAD, expr.name))
        elif isinstance(expr, ast.ArrayLit):
            for item in expr.items:
                self.compile_expr(item, instrs)
            instrs.append(Instr(ARRAY, len(expr.items)))
        elif isinstance(expr, ast.Index):
            self.compile_expr(expr.obj, instrs)
            self.compile_expr(expr.index, instrs)
            instrs.append(Instr(INDEX))
        elif isinstance(expr, ast.Unary):
            self.compile_expr(expr.operand, instrs)
            instrs.append(Instr(UNOP, expr.op))
        elif isinstance(expr, ast.Binary):
            folded = self.try_fold(expr)
            if folded is not None:
                instrs.append(Instr(PUSH, folded))
            else:
                self.compile_expr(expr.left, instrs)
                self.compile_expr(expr.right, instrs)
                instrs.append(Instr(BINOP, expr.op))
        elif isinstance(expr, ast.LogicalAnd):
            self.compile_expr(expr.left, instrs)
            keep_at = len(instrs)
            instrs.append(Instr(JIF_KEEP, None))
            instrs.append(Instr(POP))
            self.compile_expr(expr.right, instrs)
            instrs[keep_at] = Instr(JIF_KEEP, len(instrs))
        elif isinstance(expr, ast.LogicalOr):
            self.compile_expr(expr.left, instrs)
            keep_at = len(instrs)
            instrs.append(Instr(JIT_KEEP, None))
            instrs.append(Instr(POP))
            self.compile_expr(expr.right, instrs)
            instrs[keep_at] = Instr(JIT_KEEP, len(instrs))
        elif isinstance(expr, ast.CallExpr):
            for arg in expr.args:
                self.compile_expr(arg, instrs)
            instrs.append(Instr(CALL, expr.func, len(expr.args)))
        else:
            raise JsSyntaxError(f"uncompilable expression: {expr!r}")

    def try_fold(self, expr: ast.Binary):
        """Constant folding (the new version's evolution pass)."""
        if not self._fold_constants or expr.op not in FOLDABLE:
            return None
        if not isinstance(expr.left, ast.Num) or \
                not isinstance(expr.right, ast.Num):
            return None
        left = expr.left.value
        right = expr.right.value
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            if "WE-FOLD-SUB" in self._bugs:
                # BUG (wrong expression): operands the wrong way round.
                return right - left
            return left - right
        return left * right

    def __repr__(self):
        return f"JsCompiler(fold={self._fold_constants})"
