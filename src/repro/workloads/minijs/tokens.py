"""Lexer for the JavaScript-like language."""

from __future__ import annotations

from dataclasses import dataclass


class JsSyntaxError(Exception):
    """Lexical or syntactic error in a script."""


KEYWORDS = {"var", "function", "return", "if", "else", "while", "for",
            "true", "false", "null", "break", "continue"}

TWO_CHAR_OPS = ("==", "!=", "<=", ">=", "&&", "||")
PUNCT = "(){}[],;"


@dataclass(frozen=True, slots=True)
class Tok:
    kind: str  # name | kw | num | str | op | punct | eof
    text: str
    line: int


def tokenize_js(source: str) -> list[Tok]:
    tokens: list[Tok] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            tokens.append(Tok("kw" if word in KEYWORDS else "name", word,
                              line))
            i = j
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (source[j].isdigit()
                             or (source[j] == "." and not seen_dot
                                 and j + 1 < n and source[j + 1].isdigit())):
                if source[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Tok("num", source[i:j], line))
            i = j
            continue
        if ch in "'\"":
            j = i + 1
            chars = []
            while j < n and source[j] != ch:
                if source[j] == "\n":
                    raise JsSyntaxError(f"unterminated string, line {line}")
                if source[j] == "\\" and j + 1 < n:
                    chars.append({"n": "\n", "t": "\t"}.get(
                        source[j + 1], source[j + 1]))
                    j += 2
                    continue
                chars.append(source[j])
                j += 1
            if j >= n:
                raise JsSyntaxError(f"unterminated string, line {line}")
            tokens.append(Tok("str", "".join(chars), line))
            i = j + 1
            continue
        matched = False
        for op in TWO_CHAR_OPS:
            if source.startswith(op, i):
                tokens.append(Tok("op", op, line))
                i += 2
                matched = True
                break
        if matched:
            continue
        if ch in "+-*/%<>!=":
            tokens.append(Tok("op", ch, line))
            i += 1
            continue
        if ch in PUNCT:
            tokens.append(Tok("punct", ch, line))
            i += 1
            continue
        raise JsSyntaxError(f"unexpected character {ch!r}, line {line}")
    tokens.append(Tok("eof", "", line))
    return tokens
