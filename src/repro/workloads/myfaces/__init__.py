"""The motivating example (Fig. 1): MYFACES-1130.

A servlet-processing pipeline that converts non-7-bit-safe characters in
``text/html`` responses into HTML numeric entities.  The character range
that is *exempt* from conversion is programmatic dynamic state:

* :mod:`repro.workloads.myfaces.version_old` — the original version:
  ``ServletProcessor`` instantiates ``NumericEntityUtil(32, 127)``
  directly (the correct range).
* :mod:`repro.workloads.myfaces.version_new` — the refactored version: a
  new generic I/O filtering abstraction (``BinaryCharFilter``) is
  extracted from the processor — and provides the *incorrect* range
  ``[1, 127]``, so characters in ``[1, 31]`` are no longer converted.

The error manifests far from its cause: the range is fixed at request
setup, the conversion happens after the response body is produced, and
only for ``text/html`` documents containing control characters.
"""

from repro.workloads.myfaces.common import Logger, NumericEntityUtil
from repro.workloads.myfaces.scenario import (CORRECT_REQUEST,
                                              REGRESSING_REQUEST,
                                              run_new_version,
                                              run_old_version)
from repro.workloads.myfaces.version_new import \
    ServletProcessor as NewServletProcessor
from repro.workloads.myfaces.version_old import \
    ServletProcessor as OldServletProcessor

__all__ = [
    "CORRECT_REQUEST", "Logger", "NewServletProcessor", "NumericEntityUtil",
    "OldServletProcessor", "REGRESSING_REQUEST", "run_new_version",
    "run_old_version",
]
