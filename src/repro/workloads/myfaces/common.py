"""Classes shared by both versions of the motivating example."""

from __future__ import annotations

from repro.capture import traced


@traced
class Logger:
    """The LOG object of Fig. 2 — its target-object view stitches together
    events that are temporally far apart."""

    def __init__(self, name: str):
        self.name = name
        self.message_count = 0

    def add_msg(self, message: str) -> None:
        self.message_count = self.message_count + 1

    def __repr__(self):
        return f"Logger({self.name})"


@traced
class NumericEntityUtil:
    """Converts characters outside ``[min_char_range, max_char_range]``
    into HTML numeric entities.  The exempt range is mutable dynamic
    state — the heart of the regression."""

    def __init__(self, min_char_range: int, max_char_range: int):
        self.min_char_range = min_char_range
        self.max_char_range = max_char_range

    def needs_conversion(self, code_point: int) -> bool:
        low = self.min_char_range
        high = self.max_char_range
        return code_point < low or code_point > high

    def convert(self, text: str) -> str:
        pieces = []
        for ch in text:
            code_point = ord(ch)
            if self.needs_conversion(code_point):
                pieces.append(f"&#{code_point};")
            else:
                pieces.append(ch)
        return "".join(pieces)

    def __repr__(self):
        return (f"NumericEntityUtil[{self.min_char_range}.."
                f"{self.max_char_range}]")


@traced
class HttpRequest:
    """A minimal request: document type plus body."""

    def __init__(self, document_type: str, body: str):
        self.document_type = document_type
        self.body = body

    def __repr__(self):
        return f"HttpRequest({self.document_type}, {len(self.body)}b)"


@traced
class HttpResponse:
    """The generated response."""

    def __init__(self, document_type: str):
        self.document_type = document_type
        self.output = ""

    def write(self, text: str) -> None:
        self.output = self.output + text

    def __repr__(self):
        return f"HttpResponse({self.document_type})"


def render_body(request: HttpRequest, logger: Logger) -> str:
    """The 'application' part of the pipeline: produce the raw output for
    a request (identical in both versions)."""
    logger.add_msg("Rendering body")
    return f"<html><body>{request.body}</body></html>" \
        if request.document_type == "text/html" else request.body
