"""The newer, regressing version (Fig. 1b).

Refactoring: a generic I/O filtering abstraction was extracted from
``ServletProcessor``.  ``BinaryCharFilter`` now owns the numeric-entity
conversion — and provides the *incorrect* exempt range ``[1, 127]``
instead of ``[32, 127]`` to the new ``NumericEntityUtil``, so control
characters in ``[1, 31]`` silently stop being converted.  No structural
property is violated; the defect lives purely in dynamic state set long
before the conversion runs.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.myfaces.common import (HttpRequest, HttpResponse,
                                            Logger, NumericEntityUtil,
                                            render_body)


@traced
class IoFilter:
    """The new generic filtering abstraction."""

    def apply(self, text: str) -> str:
        return text

    def __repr__(self):
        return type(self).__name__


@traced
class BinaryCharFilter(IoFilter):
    """Extracted from ServletProcessor — with the wrong lower bound."""

    MIN_SAFE = 1  # BUG: should be 32 (MYFACES-1130 pattern)
    MAX_SAFE = 127

    def __init__(self):
        self.bin_conv = NumericEntityUtil(self.MIN_SAFE, self.MAX_SAFE)

    def apply(self, text: str) -> str:
        return self.bin_conv.convert(text)


@traced
class ServletProcessor:
    """The refactored processor: conversion goes through the filter
    chain."""

    def __init__(self, logger: Logger):
        self.logger = logger
        self.request_type = ""
        self.filters = []

    def add_filter(self, io_filter: IoFilter) -> None:
        self.filters = self.filters + [io_filter]

    def set_request_type(self, document_type: str) -> None:
        self.logger.add_msg("Setting request type")
        self.request_type = document_type
        self.filters = []
        if document_type == "text/html":
            self.add_filter(BinaryCharFilter())
        self.logger.add_msg("Set request type")

    def process(self, request: HttpRequest) -> HttpResponse:
        self.logger.add_msg("Handling request")
        self.set_request_type(request.document_type)
        body = render_body(request, self.logger)
        response = HttpResponse(request.document_type)
        filtered = body
        for io_filter in self.filters:
            filtered = io_filter.apply(filtered)
        response.write(filtered)
        self.logger.add_msg("Request complete")
        return response

    def __repr__(self):
        return f"ServletProcessor({self.request_type or '-'})"
