"""The original, non-regressing version (Fig. 1a).

``ServletProcessor`` directly instantiates ``NumericEntityUtil`` with the
correct exempt range ``[32, 127]`` when the request type is set to
``text/html``.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.myfaces.common import (HttpRequest, HttpResponse,
                                            Logger, NumericEntityUtil,
                                            render_body)


@traced
class ServletProcessor:
    """Processes HTTP requests; HTML output has unsafe characters
    converted to numeric entities."""

    MIN_SAFE = 32
    MAX_SAFE = 127

    def __init__(self, logger: Logger):
        self.logger = logger
        self.request_type = ""
        self.bin_conv = None

    def set_request_type(self, document_type: str) -> None:
        self.logger.add_msg("Setting request type")
        self.request_type = document_type
        if document_type == "text/html":
            self.bin_conv = NumericEntityUtil(self.MIN_SAFE, self.MAX_SAFE)
        else:
            self.bin_conv = None
        self.logger.add_msg("Set request type")

    def process(self, request: HttpRequest) -> HttpResponse:
        self.logger.add_msg("Handling request")
        self.set_request_type(request.document_type)
        body = render_body(request, self.logger)
        response = HttpResponse(request.document_type)
        converter = self.bin_conv
        if converter is not None:
            response.write(converter.convert(body))
        else:
            response.write(body)
        self.logger.add_msg("Request complete")
        return response

    def __repr__(self):
        return f"ServletProcessor({self.request_type or '-'})"
