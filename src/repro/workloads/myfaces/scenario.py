"""Test cases for the motivating example (Sec. 4.2).

* the *regressing* test case: a ``text/html`` document containing control
  characters in ``[1, 31]`` — converted by the old version, passed through
  verbatim by the new one;
* the *correct* test case: a different document type, so the conversion is
  not applied in either version (same recipe as the paper: "a test that
  used a different document type, so conversion of the characters was not
  applied in both versions").

Both versions are driven through the same ``run_request`` entry point so
traces differ only where the program versions differ, mirroring how the
paper traces one application entry point across versions.
"""

from __future__ import annotations

from functools import partial

from repro.workloads.myfaces.common import HttpRequest, Logger
from repro.workloads.myfaces import version_new, version_old

#: A body with a BEL (7) and a VT (11) control character.
REGRESSING_REQUEST = ("text/html", "hello\x07world\x0b!")
#: Same body, non-HTML document type.
CORRECT_REQUEST = ("text/plain", "hello\x07world\x0b!")


def run_request(version_module, request_spec: tuple[str, str]) -> str:
    """One request through the given version's pipeline."""
    document_type, body = request_spec
    logger = Logger("app")
    processor = version_module.ServletProcessor(logger)
    response = processor.process(HttpRequest(document_type, body))
    return response.output


#: Version entry points taking just the request (for RPrism scenarios).
run_old_version = partial(run_request, version_old)
run_new_version = partial(run_request, version_new)


def regression_manifests() -> bool:
    """True when the two versions disagree on the regressing input
    (sanity check used by tests and benches)."""
    return (run_old_version(REGRESSING_REQUEST)
            != run_new_version(REGRESSING_REQUEST))


def is_cause_entry(entry) -> bool:
    """Ground truth for FP/FN scoring: entries where the wrong lower
    bound (1) is set, read, or flows into the converter, plus the
    BinaryCharFilter construction that supplies it."""
    event = entry.event
    if event.kind == "init":
        if event.class_name == "BinaryCharFilter":
            return True
        if event.class_name == "NumericEntityUtil":
            return any(a.serialization == 1 for a in event.args)
    if event.kind in ("set", "get"):
        field = event.field
        if field in ("min_char_range", "MIN_SAFE"):
            return event.value.serialization == 1
    if event.kind == "call" and event.method.endswith(
            "NumericEntityUtil.__init__"):
        return any(a.serialization == 1 for a in event.args)
    return False
