"""Template compiler: stylesheet -> VM opcodes (the translet analogue).

Templates are *compiled* into flat opcode lists executed by
:mod:`repro.workloads.minixslt.vm`.  This is the dynamic-code-generation
stage: a defect here produces wrong *code*, whose effect appears only
when the code later runs against a document — the cause/effect separation
that makes XALANJ-1725 hard for static tools.

``LiteralElementCompiler.translate`` compiles a literal result element.
It first runs ``check_attributes_unique`` (duplicate attributes are a
stylesheet error), then emits one ``ATTR`` op per attribute.  In the
buggy version (2.5.2 analogue) the emission loop reuses the duplicate-
scan's index arithmetic and stops one attribute short whenever the
element has more than one attribute — the last attribute silently
disappears from the *generated code*.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.minixslt.stylesheet import (ApplyTemplates, ForEach,
                                                 IfInstruction,
                                                 LiteralElement,
                                                 LiteralText, Stylesheet,
                                                 StylesheetError, Template,
                                                 ValueOf,
                                                 split_attribute_template)


@traced
class Op:
    """One VM instruction."""

    def __init__(self, kind: str, arg1=None, arg2=None):
        self.kind = kind
        self.arg1 = arg1
        self.arg2 = arg2

    def __repr__(self):
        parts = [self.kind]
        if self.arg1 is not None:
            parts.append(repr(self.arg1))
        if self.arg2 is not None:
            parts.append(repr(self.arg2))
        return f"Op({', '.join(parts)})"


@traced
class CompiledTemplate:
    """A template lowered to opcodes."""

    def __init__(self, match: str, ops: list[Op]):
        self.match = match
        self.ops = ops

    def __repr__(self):
        return f"CompiledTemplate({self.match}, {len(self.ops)} ops)"


@traced
class LiteralElementCompiler:
    """Compilation of literal result elements (XALANJ-1725 site)."""

    def __init__(self, buggy_attribute_emission: bool):
        self.buggy_attribute_emission = buggy_attribute_emission

    def check_attributes_unique(self,
                                attributes: list[tuple[str, str]]) -> int:
        """Reject duplicate attribute names; returns the unique count."""
        seen = []
        for name, _value in attributes:
            if name in seen:
                raise StylesheetError(f"duplicate attribute: {name}")
            seen = seen + [name]
        return len(seen)

    def translate(self, element: LiteralElement,
                  compile_body) -> list[Op]:
        """Emit ops for one literal element (start, attrs, body, end)."""
        unique = self.check_attributes_unique(element.attributes)
        ops = [Op("START_ELEM", element.tag)]
        if self.buggy_attribute_emission and unique > 1:
            # BUG: reuses the uniqueness scan's index as an *exclusive*
            # bound, dropping the final attribute from the generated code.
            emit_count = unique - 1
        else:
            emit_count = unique
        for name, value in element.attributes[:emit_count]:
            if "{" in value:
                # Attribute value template: evaluated at execution time.
                ops.append(Op("ATTR_TMPL", name,
                              split_attribute_template(value)))
            else:
                ops.append(Op("ATTR", name, value))
        ops.extend(compile_body(element.body))
        ops.append(Op("END_ELEM", element.tag))
        return ops


@traced
class TemplateCompiler:
    """Compiles every template of a stylesheet to opcodes."""

    def __init__(self, buggy_attribute_emission: bool = False,
                 peephole: bool = False):
        self.literal_compiler = LiteralElementCompiler(
            buggy_attribute_emission)
        self.peephole = peephole

    def compile_stylesheet(self, stylesheet: Stylesheet
                           ) -> list[CompiledTemplate]:
        compiled = []
        for template in stylesheet.templates:
            compiled.append(self.compile_template(template))
        return compiled

    def compile_template(self, template: Template) -> CompiledTemplate:
        ops = self.compile_body(template.body)
        if self.peephole:
            ops = self.fuse_adjacent_text(ops)
        return CompiledTemplate(template.match, ops)

    def compile_body(self, body: list) -> list[Op]:
        ops: list[Op] = []
        for item in body:
            if isinstance(item, LiteralText):
                ops.append(Op("TEXT", item.text))
            elif isinstance(item, ValueOf):
                ops.append(Op("VALUE_OF", item.select))
            elif isinstance(item, ApplyTemplates):
                ops.append(Op("APPLY", item.select))
            elif isinstance(item, ForEach):
                ops.append(Op("FOR_EACH", item.select,
                              self.compile_body(item.body)))
            elif isinstance(item, IfInstruction):
                ops.append(Op("IF", item.test,
                              self.compile_body(item.body)))
            elif isinstance(item, LiteralElement):
                ops.extend(self.literal_compiler.translate(
                    item, self.compile_body))
            else:
                raise StylesheetError(f"uncompilable item: {item!r}")
        return ops

    def fuse_adjacent_text(self, ops: list[Op]) -> list[Op]:
        """2.5.x peephole optimisation (benign churn between versions):
        adjacent TEXT ops fuse into one."""
        fused: list[Op] = []
        for op in ops:
            if (op.kind == "TEXT" and fused
                    and fused[-1].kind == "TEXT"):
                fused[-1] = Op("TEXT", fused[-1].arg1 + op.arg1)
            else:
                fused.append(op)
        return fused

    def __repr__(self):
        return "TemplateCompiler"
