"""Engine facade: version selection and the transform pipeline.

Versions (feature matrix mirrors the two regressions' version spans):

=========  ==================  ====================  =================
version    namespace module    attribute emission    peephole passes
=========  ==================  ====================  =================
``2.4.1``  flat (old arch)     correct               off
``2.5.1``  scoped (rewritten,  correct               on
           shadowing bug)
``2.5.2``  scoped (same)       **buggy** (1725)      on
=========  ==================  ====================  =================

* XALANJ-1802 analogue: 2.4.1 -> 2.5.1 (re-architected namespaces).
* XALANJ-1725 analogue: 2.5.1 -> 2.5.2 (compiler emits wrong code).
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.minixslt.compiler import TemplateCompiler
from repro.workloads.minixslt.namespaces import make_resolver
from repro.workloads.minixslt.stylesheet import parse_stylesheet
from repro.workloads.minixslt.vm import TransformVm
from repro.workloads.minixslt.xmldoc import parse_xml

#: Supported engine versions.
VERSIONS = ("2.4.1", "2.5.1", "2.5.2")

_FEATURES = {
    "2.4.1": {"namespaces": "flat", "buggy_pop": False,
              "buggy_attrs": False, "peephole": False},
    "2.5.1": {"namespaces": "scoped", "buggy_pop": True,
              "buggy_attrs": False, "peephole": True},
    "2.5.2": {"namespaces": "scoped", "buggy_pop": True,
              "buggy_attrs": True, "peephole": True},
}


@traced
class XsltEngine:
    """One engine instance of a specific version."""

    def __init__(self, version: str):
        if version not in _FEATURES:
            raise ValueError(f"unknown engine version: {version!r}")
        self.version = version
        self.features = _FEATURES[version]

    def compile(self, stylesheet_source: str):
        stylesheet = parse_stylesheet(stylesheet_source)
        compiler = TemplateCompiler(
            buggy_attribute_emission=self.features["buggy_attrs"],
            peephole=self.features["peephole"])
        return compiler.compile_stylesheet(stylesheet)

    def transform(self, stylesheet_source: str, document_source: str) -> str:
        """The full pipeline: parse, compile (codegen), execute."""
        templates = self.compile(stylesheet_source)
        resolver = make_resolver(self.features["namespaces"],
                                 buggy_pop=self.features["buggy_pop"])
        document = parse_xml(document_source)
        vm = TransformVm(templates, resolver)
        return vm.transform(document)

    def __repr__(self):
        return f"XsltEngine({self.version})"


def transform(version: str, stylesheet_source: str,
              document_source: str) -> str:
    """Convenience one-shot transform."""
    return XsltEngine(version).transform(stylesheet_source,
                                         document_source)
