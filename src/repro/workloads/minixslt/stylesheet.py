"""Stylesheet model and parser.

A stylesheet is an XML document in the ``xsl`` prefix, supporting the core
constructs the scenarios need::

    <xsl:stylesheet>
      <xsl:template match="name">
        literal elements with {expr} attribute value templates
        <xsl:value-of select="expr"/>
        <xsl:apply-templates select="name"/>
        <xsl:for-each select="name"> ... </xsl:for-each>
        <xsl:if test="expr = 'literal'"> ... </xsl:if>
      </xsl:template>
    </xsl:stylesheet>

Select expressions: ``.`` (current text), ``@attr``, a child element name,
``name()`` and ``namespace-uri()``.  ``xsl:if`` tests are either an
equality against a quoted literal or the truthiness (non-emptiness) of a
select expression.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.minixslt.xmldoc import Element, parse_xml


class StylesheetError(Exception):
    """Malformed stylesheet."""


@traced
class Template:
    """One ``xsl:template`` with its match pattern and body items."""

    def __init__(self, match: str, body: list):
        self.match = match
        self.body = body

    def __repr__(self):
        return f"Template(match={self.match})"


@traced
class LiteralText:
    def __init__(self, text: str):
        self.text = text

    def __repr__(self):
        return f"LiteralText({self.text[:20]!r})"


@traced
class ValueOf:
    def __init__(self, select: str):
        self.select = select

    def __repr__(self):
        return f"ValueOf({self.select})"


@traced
class ApplyTemplates:
    def __init__(self, select: str):
        self.select = select

    def __repr__(self):
        return f"ApplyTemplates({self.select})"


@traced
class ForEach:
    def __init__(self, select: str, body: list):
        self.select = select
        self.body = body

    def __repr__(self):
        return f"ForEach({self.select})"


@traced
class IfInstruction:
    """``xsl:if test="expr"`` — the body runs when the test expression
    evaluates truthy (non-empty), or when ``expr = 'literal'`` holds."""

    def __init__(self, test: str, body: list):
        self.test = test
        self.body = body

    def __repr__(self):
        return f"If({self.test})"


@traced
class LiteralElement:
    """A literal result element; its compilation is where XALANJ-1725
    lives."""

    def __init__(self, tag: str, attributes: list[tuple[str, str]],
                 body: list):
        self.tag = tag
        self.attributes = attributes
        self.body = body

    def __repr__(self):
        return f"LiteralElement(<{self.tag}> " \
               f"{len(self.attributes)} attrs)"


@traced
class Stylesheet:
    """Parsed stylesheet: templates in document order."""

    def __init__(self, templates: list[Template]):
        self.templates = templates

    def template_for(self, element: Element) -> Template | None:
        """First template whose match pattern fits (local name or ``*``)."""
        for template in self.templates:
            if template.match == element.local_name() or \
                    template.match == "*":
                return template
        return None

    def __repr__(self):
        return f"Stylesheet({len(self.templates)} templates)"


def parse_stylesheet(source: str) -> Stylesheet:
    """Parse stylesheet XML into the template model."""
    root = parse_xml(source)
    if root.local_name() != "stylesheet":
        raise StylesheetError(f"not a stylesheet: <{root.tag}>")
    templates = []
    for child in root.children:
        if child.local_name() != "template":
            continue
        match = child.attribute("match")
        if match is None:
            raise StylesheetError("template without match pattern")
        templates.append(Template(match, _parse_body(child)))
    if not templates:
        raise StylesheetError("stylesheet has no templates")
    return Stylesheet(templates)


def _parse_body(element: Element) -> list:
    """Body items of a template or literal element, in document order.

    The XML parser separates text and children; we approximate document
    order as: leading text, then children each followed by nothing —
    sufficient for the scenarios (mixed text/element content keeps the
    text first).
    """
    items: list = []
    if element.text:
        items.append(LiteralText(element.text))
    for child in element.children:
        items.append(_parse_item(child))
    return items


def _parse_item(element: Element):
    local = element.local_name()
    prefix = element.prefix()
    if prefix == "xsl":
        if local == "value-of":
            select = element.attribute("select")
            if select is None:
                raise StylesheetError("value-of without select")
            return ValueOf(select)
        if local == "apply-templates":
            return ApplyTemplates(element.attribute("select", "*"))
        if local == "for-each":
            select = element.attribute("select")
            if select is None:
                raise StylesheetError("for-each without select")
            return ForEach(select, _parse_body(element))
        if local == "if":
            test = element.attribute("test")
            if test is None:
                raise StylesheetError("if without test")
            return IfInstruction(test, _parse_body(element))
        raise StylesheetError(f"unsupported xsl instruction: {local}")
    return LiteralElement(element.tag, list(element.attributes),
                          _parse_body(element))


def split_attribute_template(value: str) -> list[tuple[str, str]]:
    """Split an attribute value template into ``("text", ...)`` and
    ``("expr", ...)`` parts: ``"id-{@name}"`` ->
    ``[("text", "id-"), ("expr", "@name")]``."""
    parts: list[tuple[str, str]] = []
    rest = value
    while rest:
        open_at = rest.find("{")
        if open_at < 0:
            parts.append(("text", rest))
            break
        close_at = rest.find("}", open_at)
        if close_at < 0:
            raise StylesheetError(
                f"unterminated attribute template in {value!r}")
        if open_at > 0:
            parts.append(("text", rest[:open_at]))
        parts.append(("expr", rest[open_at + 1:close_at]))
        rest = rest[close_at + 1:]
    return parts
