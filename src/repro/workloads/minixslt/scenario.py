"""The two Xalan regression scenarios.

**XALANJ-1725** (2.5.1 -> 2.5.2): a stylesheet whose template contains a
literal result element with several attributes.  The 2.5.2 compiler emits
one ATTR op too few; the missing attribute only vanishes when the
generated code runs.  The correct test case removes the multi-attribute
section from the stylesheet ("we modified the XSLT file and removed the
small section of the file that was causing incorrect behavior ...
constructed without foreknowledge of the regression cause").

**XALANJ-1802** (2.4.1 -> 2.5.1): an input document that *shadows* a
namespace prefix in a nested element and uses it again afterwards.  The
re-architected scoped resolver drops the outer binding on pop, so the
later ``namespace-uri()`` falls back to the recovery URI.  The correct
test case uses the same document without the shadowing redeclaration.
"""

from __future__ import annotations

from functools import partial

from repro.workloads.minixslt.engine import transform

# ---------------------------------------------------------------------------
# XALANJ-1725 analogue
# ---------------------------------------------------------------------------

STYLESHEET_1725 = """
<xsl:stylesheet>
  <xsl:template match="catalog">
    <xsl:apply-templates select="item"/>
  </xsl:template>
  <xsl:template match="item">
    <row id="r1" class="item" role="data">
      <xsl:value-of select="@name"/>
    </row>
  </xsl:template>
</xsl:stylesheet>
"""

#: Same stylesheet with the multi-attribute literal element reduced — the
#: similar, non-regressing test case.
STYLESHEET_1725_SAFE = """
<xsl:stylesheet>
  <xsl:template match="catalog">
    <xsl:apply-templates select="item"/>
  </xsl:template>
  <xsl:template match="item">
    <row id="r1">
      <xsl:value-of select="@name"/>
    </row>
  </xsl:template>
</xsl:stylesheet>
"""

DOCUMENT_1725 = """
<catalog>
  <item name="alpha"/>
  <item name="beta"/>
  <item name="gamma"/>
</catalog>
"""

#: Inputs for the RPrism scenario driver: (stylesheet, document).
REGRESSING_INPUT_1725 = (STYLESHEET_1725, DOCUMENT_1725)
CORRECT_INPUT_1725 = (STYLESHEET_1725_SAFE, DOCUMENT_1725)


def run_1725(version: str, inputs: tuple[str, str]) -> str:
    stylesheet, document = inputs
    return transform(version, stylesheet, document)


run_1725_old = partial(run_1725, "2.5.1")
run_1725_new = partial(run_1725, "2.5.2")


def regression_1725_manifests() -> bool:
    return (run_1725_old(REGRESSING_INPUT_1725)
            != run_1725_new(REGRESSING_INPUT_1725))


def is_cause_entry_1725(entry) -> bool:
    """Ground truth: the wrong attribute emission inside
    LiteralElementCompiler.translate / check_attributes_unique, plus the
    downstream flow of the dropped ``role`` attribute (missing ATTR op at
    codegen, missing attribute write at execution) — the paper counts
    such sequences as regression-related, not as false positives."""
    method = getattr(entry.event, "method", "") or ""
    if ("LiteralElementCompiler.translate" in entry.method
            or "LiteralElementCompiler.translate" in method
            or "check_attributes_unique" in entry.method
            or "check_attributes_unique" in method):
        return True
    event = entry.event
    texts = []
    for rep in [getattr(event, "value", None),
                getattr(event, "obj", None),
                *list(getattr(event, "args", ()) or ())]:
        if rep is not None:
            texts.append(str(rep.serialization))
    # The dropped attribute itself, or the affected generated-code block
    # flowing from the compiler to the VM (its representations carry the
    # <row> template's op list / the "item" compiled template).
    return any("role" in text
               or "Op(START_ELEM, 'row')" in text
               or "CompiledTemplate(item" in text
               for text in texts)


# ---------------------------------------------------------------------------
# XALANJ-1802 analogue
# ---------------------------------------------------------------------------

STYLESHEET_1802 = """
<xsl:stylesheet>
  <xsl:template match="doc">
    <xsl:apply-templates select="*"/>
  </xsl:template>
  <xsl:template match="*">
    <xsl:value-of select="name()"/>
    <xsl:value-of select="namespace-uri()"/>
    <xsl:apply-templates select="*"/>
  </xsl:template>
</xsl:stylesheet>
"""

#: The prefix ``a`` is shadowed inside <inner> and used again after it.
DOCUMENT_1802 = """
<doc xmlns:a="urn:outer">
  <a:first>x</a:first>
  <inner xmlns:a="urn:inner">
    <a:second>y</a:second>
  </inner>
  <a:third>z</a:third>
</doc>
"""

#: Same document without the shadowing redeclaration.
DOCUMENT_1802_SAFE = """
<doc xmlns:a="urn:outer">
  <a:first>x</a:first>
  <inner>
    <a:second>y</a:second>
  </inner>
  <a:third>z</a:third>
</doc>
"""

REGRESSING_INPUT_1802 = (STYLESHEET_1802, DOCUMENT_1802)
CORRECT_INPUT_1802 = (STYLESHEET_1802, DOCUMENT_1802_SAFE)


def run_1802(version: str, inputs: tuple[str, str]) -> str:
    stylesheet, document = inputs
    return transform(version, stylesheet, document)


run_1802_old = partial(run_1802, "2.4.1")
run_1802_new = partial(run_1802, "2.5.1")


def regression_1802_manifests() -> bool:
    return (run_1802_old(REGRESSING_INPUT_1802)
            != run_1802_new(REGRESSING_INPUT_1802))


def is_cause_entry_1802(entry) -> bool:
    """Ground truth: the over-eager pop in the scoped resolver and the
    unresolved-URI flow it forces through resolution and output."""
    method = getattr(entry.event, "method", "") or ""
    if ("ScopedResolver.pop_scope" in entry.method
            or "ScopedResolver.pop_scope" in method
            or "resolve" in method):
        return True
    event = entry.event
    texts = []
    for rep in [getattr(event, "value", None),
                *list(getattr(event, "args", ()) or ())]:
        if rep is not None:
            texts.append(str(rep.serialization))
    return any("urn:unresolved" in text or "urn:outer" in text
               for text in texts)
