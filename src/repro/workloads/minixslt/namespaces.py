"""Namespace resolution — the module re-architected between 2.4.1 and
2.5.1 (the XALANJ-1802 analogue).

``FlatResolver`` is the 2.4.1 design: a plain dictionary snapshot per
element, rebuilt by copying on entry.  Correct, if unfashionable.

``ScopedResolver`` is the 2.5.1 rewrite: a single binding stack with
scope push/pop — faster, and carrying a corner-case bug: ``pop_scope``
removes *all* bindings of a prefix declared in the closing scope, not
just the innermost one, so a prefix *shadowed and then unshadowed*
resolves to nothing.  The bug only fires on inputs that redeclare a
prefix in a nested element and use it again after the element closes.
"""

from __future__ import annotations

from repro.capture import traced


class NamespaceError(Exception):
    """Unresolvable prefix."""


@traced
class FlatResolver:
    """2.4.1: immutable per-scope dictionary snapshots."""

    def __init__(self):
        self.scopes = [{"": "", "xml": "http://www.w3.org/XML/1998/namespace"}]

    def push_scope(self, declarations: list[tuple[str, str]]) -> None:
        merged = dict(self.scopes[-1])
        for prefix, uri in declarations:
            merged[prefix] = uri
        self.scopes = self.scopes + [merged]

    def pop_scope(self) -> None:
        self.scopes = self.scopes[:-1]

    def resolve(self, prefix: str) -> str:
        current = self.scopes[-1]
        if prefix in current:
            return current[prefix]
        raise NamespaceError(f"unbound namespace prefix: {prefix!r}")

    def __repr__(self):
        return f"FlatResolver(depth={len(self.scopes)})"


@traced
class Binding:
    """One prefix binding on the shared stack."""

    def __init__(self, prefix: str, uri: str, depth: int):
        self.prefix = prefix
        self.uri = uri
        self.depth = depth

    def __repr__(self):
        return f"Binding({self.prefix}->{self.uri}@{self.depth})"


@traced
class ScopedResolver:
    """2.5.1: one shared binding stack with scope depths."""

    def __init__(self, buggy_pop: bool):
        self.buggy_pop = buggy_pop
        self.depth = 0
        self.bindings = [Binding("", "", 0),
                         Binding("xml",
                                 "http://www.w3.org/XML/1998/namespace", 0)]

    def push_scope(self, declarations: list[tuple[str, str]]) -> None:
        self.depth = self.depth + 1
        for prefix, uri in declarations:
            self.bindings = self.bindings + [
                Binding(prefix, uri, self.depth)]

    def pop_scope(self) -> None:
        closing = self.depth
        if self.buggy_pop:
            # BUG (XALANJ-1802 analogue): drops every binding whose
            # *prefix* was declared in the closing scope — including
            # outer bindings the inner one merely shadowed.
            closing_prefixes = {b.prefix for b in self.bindings
                                if b.depth == closing}
            self.bindings = [b for b in self.bindings
                             if b.prefix not in closing_prefixes
                             or b.depth == 0]
        else:
            self.bindings = [b for b in self.bindings
                             if b.depth < closing]
        self.depth = closing - 1

    def resolve(self, prefix: str) -> str:
        for binding in reversed(self.bindings):
            if binding.prefix == prefix:
                return binding.uri
        raise NamespaceError(f"unbound namespace prefix: {prefix!r}")

    def __repr__(self):
        return f"ScopedResolver(depth={self.depth}, " \
               f"bindings={len(self.bindings)})"


def make_resolver(architecture: str, buggy_pop: bool = False):
    """Factory selecting the namespace architecture by engine version."""
    if architecture == "flat":
        return FlatResolver()
    if architecture == "scoped":
        return ScopedResolver(buggy_pop=buggy_pop)
    raise ValueError(f"unknown namespace architecture: {architecture!r}")
