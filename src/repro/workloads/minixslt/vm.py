"""The opcode VM: executes compiled templates against an input document.

This is where XALANJ-1725's *effect* surfaces — long after the compiler
produced the wrong ops — and where namespace resolution (XALANJ-1802's
re-architected module) is exercised for every element pushed/popped.
Unresolvable prefixes degrade to the recovery URI rather than aborting,
so the 1802 regression manifests as wrong output.
"""

from __future__ import annotations

from repro.capture import traced
from repro.workloads.minixslt.compiler import CompiledTemplate, Op
from repro.workloads.minixslt.namespaces import NamespaceError
from repro.workloads.minixslt.xmldoc import Element, escape

#: Emitted when a prefix cannot be resolved (lenient recovery).
UNRESOLVED_URI = "urn:unresolved"


@traced
class OutputBuffer:
    """Accumulates the transformation output.

    Writes mutate the buffer in place: the traced event of interest is
    the ``write`` call with its text argument, not a snapshot of the
    whole accumulated document per write.
    """

    def __init__(self):
        self._parts = []

    def write(self, text: str) -> None:
        self._parts.append(text)

    def result(self) -> str:
        return "".join(self._parts)

    def __repr__(self):
        return f"OutputBuffer({len(self._parts)} parts)"


@traced
class TransformVm:
    """Executes compiled templates over the input tree."""

    def __init__(self, templates: list[CompiledTemplate], resolver):
        self.templates = templates
        self.resolver = resolver
        self.output = OutputBuffer()
        self.apply_depth = 0
        self.tag_open = False

    # -- template dispatch ----------------------------------------------------

    def template_for(self, element: Element) -> CompiledTemplate | None:
        for template in self.templates:
            if template.match == element.local_name() or \
                    template.match == "*":
                return template
        return None

    def transform(self, root: Element) -> str:
        self.apply_to(root)
        return self.output.result()

    def apply_to(self, element: Element) -> None:
        self.apply_depth = self.apply_depth + 1
        self.resolver.push_scope(element.namespace_declarations())
        template = self.template_for(element)
        if template is not None:
            self.execute(template.ops, element)
        else:
            # Built-in rule: recurse into children, copy text.
            if element.text:
                self.output.write(escape(element.text))
            for child in element.children:
                self.apply_to(child)
        self.resolver.pop_scope()
        self.apply_depth = self.apply_depth - 1

    # -- op execution -----------------------------------------------------------

    def execute(self, ops: list[Op], context: Element) -> None:
        for op in ops:
            self.execute_op(op, context)

    def close_pending_tag(self) -> None:
        """A START_ELEM is followed by its ATTR ops; the ``>`` is emitted
        lazily before the first non-attribute output."""
        if self.tag_open:
            self.output.write(">")
            self.tag_open = False

    def execute_op(self, op: Op, context: Element) -> None:
        kind = op.kind
        if kind == "ATTR":
            self.output.write(f' {op.arg1}="{op.arg2}"')
            return
        if kind == "ATTR_TMPL":
            value = self.expand_template(op.arg2, context)
            self.output.write(f' {op.arg1}="{value}"')
            return
        if kind == "START_ELEM":
            self.close_pending_tag()
            self.output.write(f"<{op.arg1}")
            self.tag_open = True
            return
        self.close_pending_tag()
        if kind == "TEXT":
            self.output.write(op.arg1)
        elif kind == "END_ELEM":
            self.output.write(f"</{op.arg1}>")
        elif kind == "VALUE_OF":
            self.output.write(escape(self.evaluate(op.arg1, context)))
        elif kind == "APPLY":
            for child in self.select_nodes(op.arg1, context):
                self.apply_to(child)
        elif kind == "FOR_EACH":
            for child in self.select_nodes(op.arg1, context):
                self.execute(op.arg2, child)
        elif kind == "IF":
            if self.test_holds(op.arg1, context):
                self.execute(op.arg2, context)
        else:
            raise ValueError(f"unknown op: {kind}")

    def expand_template(self, parts, context: Element) -> str:
        """Evaluate an attribute value template's parts."""
        expanded = []
        for kind, payload in parts:
            if kind == "text":
                expanded.append(payload)
            else:
                expanded.append(self.evaluate(payload, context))
        return "".join(expanded)

    def test_holds(self, test: str, context: Element) -> bool:
        """``xsl:if`` tests: ``expr = 'literal'`` equality, or the
        truthiness (non-emptiness) of a select expression."""
        if "=" in test:
            left, _, right = test.partition("=")
            expected = right.strip().strip("'")
            return self.evaluate(left.strip(), context) == expected
        return self.evaluate(test.strip(), context) != ""

    # -- select expressions -------------------------------------------------------

    def evaluate(self, select: str, context: Element) -> str:
        if select == ".":
            return context.text
        if select == "name()":
            return context.local_name()
        if select == "namespace-uri()":
            prefix = context.prefix() or ""
            return self.resolve_prefix(prefix)
        if select.startswith("@"):
            return context.attribute(select[1:], "") or ""
        child = context.first_child(select)
        if child is None:
            for candidate in context.children:
                if candidate.local_name() == select:
                    return candidate.text
            return ""
        return child.text

    def resolve_prefix(self, prefix: str) -> str:
        try:
            return self.resolver.resolve(prefix)
        except NamespaceError:
            return UNRESOLVED_URI

    def select_nodes(self, select: str, context: Element) -> list[Element]:
        if select == "*":
            return list(context.children)
        return [c for c in context.children if c.local_name() == select]

    def __repr__(self):
        return f"TransformVm({len(self.templates)} templates)"
