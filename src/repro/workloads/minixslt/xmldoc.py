"""A small, real XML parser: elements, attributes, text, comments,
self-closing tags, and namespace-prefixed names.

Attributes are kept as an ordered list of (name, value) pairs — duplicate
attributes are a *compile-time* concern of the stylesheet compiler
(``check_attributes_unique``), so the parser must preserve them.
"""

from __future__ import annotations

from repro.capture import traced


class XmlError(Exception):
    """Malformed document."""


@traced
class Element:
    """An XML element."""

    def __init__(self, tag: str, attributes=None):
        self.tag = tag
        self.attributes = list(attributes or [])
        self.children = []
        self.text_chunks = []

    # -- structure ----------------------------------------------------------

    def add_child(self, child: "Element") -> None:
        self.children = self.children + [child]

    def add_text(self, text: str) -> None:
        self.text_chunks = self.text_chunks + [text]

    # -- queries ------------------------------------------------------------

    @property
    def text(self) -> str:
        return "".join(self.text_chunks)

    def attribute(self, name: str, default: str | None = None) -> str | None:
        for attr_name, value in self.attributes:
            if attr_name == name:
                return value
        return default

    def children_named(self, tag: str) -> list["Element"]:
        return [c for c in self.children if c.tag == tag]

    def first_child(self, tag: str) -> "Element | None":
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def local_name(self) -> str:
        return self.tag.rsplit(":", 1)[-1]

    def prefix(self) -> str | None:
        if ":" in self.tag:
            return self.tag.split(":", 1)[0]
        return None

    def namespace_declarations(self) -> list[tuple[str, str]]:
        """``xmlns:pfx="uri"`` attributes as (prefix, uri) pairs; the
        default namespace is prefix ''. """
        declarations = []
        for name, value in self.attributes:
            if name == "xmlns":
                declarations.append(("", value))
            elif name.startswith("xmlns:"):
                declarations.append((name[6:], value))
        return declarations

    def __repr__(self):
        return f"<{self.tag} attrs={len(self.attributes)} " \
               f"kids={len(self.children)}>"


@traced
class XmlParser:
    """Recursive-descent XML parser."""

    def __init__(self, source: str):
        self.source = source
        self.at = 0

    def parse(self) -> Element:
        self._skip_prolog()
        element = self._element()
        self._skip_whitespace_and_comments()
        if self.at < len(self.source):
            raise XmlError(f"trailing content at offset {self.at}")
        return element

    # -- scanning -------------------------------------------------------------

    def _peek(self) -> str:
        return self.source[self.at] if self.at < len(self.source) else ""

    def _skip_prolog(self) -> None:
        self._skip_whitespace_and_comments()
        if self.source.startswith("<?xml", self.at):
            end = self.source.find("?>", self.at)
            if end < 0:
                raise XmlError("unterminated XML declaration")
            self.at = end + 2
        self._skip_whitespace_and_comments()

    def _skip_whitespace_and_comments(self) -> None:
        while self.at < len(self.source):
            ch = self.source[self.at]
            if ch in " \t\r\n":
                self.at += 1
                continue
            if self.source.startswith("<!--", self.at):
                end = self.source.find("-->", self.at)
                if end < 0:
                    raise XmlError("unterminated comment")
                self.at = end + 3
                continue
            break

    def _name(self) -> str:
        start = self.at
        while self.at < len(self.source) and (
                self.source[self.at].isalnum()
                or self.source[self.at] in ":_-."):
            self.at += 1
        if self.at == start:
            raise XmlError(f"expected name at offset {start}")
        return self.source[start:self.at]

    def _expect(self, text: str) -> None:
        if not self.source.startswith(text, self.at):
            raise XmlError(f"expected {text!r} at offset {self.at}")
        self.at += len(text)

    # -- grammar -------------------------------------------------------------

    def _element(self) -> Element:
        self._expect("<")
        tag = self._name()
        attributes = self._attributes()
        element = Element(tag, attributes)
        self._skip_spaces()
        if self.source.startswith("/>", self.at):
            self.at += 2
            return element
        self._expect(">")
        self._content(element)
        self._expect("</")
        closing = self._name()
        if closing != tag:
            raise XmlError(f"mismatched tags: <{tag}> vs </{closing}>")
        self._skip_spaces()
        self._expect(">")
        return element

    def _skip_spaces(self) -> None:
        while self._peek() in " \t\r\n" and self._peek():
            self.at += 1

    def _attributes(self) -> list[tuple[str, str]]:
        attributes = []
        while True:
            self._skip_spaces()
            ch = self._peek()
            if ch in (">", "/", ""):
                return attributes
            name = self._name()
            self._skip_spaces()
            self._expect("=")
            self._skip_spaces()
            quote = self._peek()
            if quote not in "'\"":
                raise XmlError(f"expected quoted value at {self.at}")
            self.at += 1
            end = self.source.find(quote, self.at)
            if end < 0:
                raise XmlError("unterminated attribute value")
            attributes.append((name, self.source[self.at:end]))
            self.at = end + 1

    def _content(self, element: Element) -> None:
        while True:
            if self.at >= len(self.source):
                raise XmlError(f"unterminated element <{element.tag}>")
            if self.source.startswith("<!--", self.at):
                end = self.source.find("-->", self.at)
                if end < 0:
                    raise XmlError("unterminated comment")
                self.at = end + 3
                continue
            if self.source.startswith("</", self.at):
                return
            if self._peek() == "<":
                element.add_child(self._element())
                continue
            end = self.source.find("<", self.at)
            if end < 0:
                raise XmlError(f"unterminated element <{element.tag}>")
            text = self.source[self.at:end]
            if text.strip():
                element.add_text(unescape(text))
            self.at = end


def unescape(text: str) -> str:
    return (text.replace("&lt;", "<").replace("&gt;", ">")
            .replace("&quot;", '"').replace("&apos;", "'")
            .replace("&amp;", "&"))


def escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def parse_xml(source: str) -> Element:
    """Parse an XML document, returning its root element."""
    return XmlParser(source).parse()
