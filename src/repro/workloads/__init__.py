"""Evaluation workloads: fully-implemented substitutes for the systems the
paper's evaluation runs on.

* :mod:`repro.workloads.myfaces` — the MYFACES-1130 motivating example
  (Fig. 1): servlet processing with numeric-entity conversion.
* :mod:`repro.workloads.minijs` — the Rhino analogue: a small JavaScript-
  like engine (lexer, parser, icode compiler, interpreter) with a registry
  of injectable regressions following the paper's root-cause distribution.
* :mod:`repro.workloads.minixslt` — the Xalan analogue: XML parsing,
  stylesheet compilation to VM opcodes (dynamic code generation), and the
  XALANJ-1725 / XALANJ-1802 regression analogues.
* :mod:`repro.workloads.minidb` — the Derby analogue: a small SQL engine
  (parser, planner/optimiser, executor, lock manager) with worker threads
  and the DERBY-1633 regression analogue.
* :mod:`repro.workloads.invariants` — the Daikon analogue: likely-invariant
  inference with the XorVisitor regression.
* :mod:`repro.workloads.bugs` — the regression-injection framework and the
  root-cause distribution of Sec. 5.1.
"""
